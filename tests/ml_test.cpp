#include <gtest/gtest.h>

#include <cmath>

#include "convbound/ml/gbt.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

std::pair<std::vector<std::vector<double>>, std::vector<double>> make_data(
    int n, int d, Rng& rng, double (*f)(const std::vector<double>&)) {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < n; ++i) {
    std::vector<double> row(static_cast<std::size_t>(d));
    for (auto& v : row) v = rng.uniform(-2, 2);
    y.push_back(f(row));
    X.push_back(std::move(row));
  }
  return {X, y};
}

double mean_baseline_rmse(const std::vector<double>& y) {
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double se = 0;
  for (double v : y) se += (v - mean) * (v - mean);
  return std::sqrt(se / static_cast<double>(y.size()));
}

TEST(Gbt, FitsConstantExactly) {
  Gbt model;
  std::vector<std::vector<double>> X = {{0}, {1}, {2}, {3}};
  std::vector<double> y = {5, 5, 5, 5};
  model.fit(X, y);
  EXPECT_NEAR(model.predict({1.5}), 5.0, 1e-9);
}

TEST(Gbt, LearnsStepFunction) {
  Rng rng(1);
  auto [X, y] = make_data(400, 1, rng, [](const std::vector<double>& x) {
    return x[0] > 0 ? 10.0 : -10.0;
  });
  Gbt model;
  model.fit(X, y);
  EXPECT_NEAR(model.predict({1.0}), 10.0, 1.0);
  EXPECT_NEAR(model.predict({-1.0}), -10.0, 1.0);
}

TEST(Gbt, BeatsMeanPredictorOnNonlinearTarget) {
  Rng rng(2);
  auto [X, y] = make_data(600, 3, rng, [](const std::vector<double>& x) {
    return x[0] * x[1] + std::abs(x[2]);
  });
  Gbt model;
  model.fit(X, y);
  EXPECT_LT(model.rmse(X, y), 0.4 * mean_baseline_rmse(y));
}

TEST(Gbt, MoreTreesFitBetter) {
  Rng rng(3);
  auto [X, y] = make_data(500, 2, rng, [](const std::vector<double>& x) {
    return std::sin(x[0]) * x[1];
  });
  GbtParams small;
  small.num_trees = 4;
  GbtParams big;
  big.num_trees = 128;
  Gbt a, b;
  a.fit(X, y, small);
  b.fit(X, y, big);
  EXPECT_LT(b.rmse(X, y), a.rmse(X, y));
}

TEST(Gbt, GeneralisesOnHeldOut) {
  Rng rng(4);
  auto f = [](const std::vector<double>& x) { return 3 * x[0] - x[1]; };
  auto [X, y] = make_data(800, 2, rng, f);
  auto [Xt, yt] = make_data(200, 2, rng, f);
  Gbt model;
  model.fit(X, y);
  EXPECT_LT(model.rmse(Xt, yt), 0.35 * mean_baseline_rmse(yt));
}

TEST(Gbt, RejectsEmptyAndRagged) {
  Gbt model;
  EXPECT_THROW(model.fit({}, {}), Error);
  EXPECT_THROW(model.fit({{1, 2}, {3}}, {1, 2}), Error);
  EXPECT_THROW(model.predict({1.0}), Error);  // before fit
}

TEST(Gbt, PredictChecksArity) {
  Gbt model;
  model.fit({{1, 2}, {2, 3}, {3, 4}, {4, 5}}, {1, 2, 3, 4});
  EXPECT_THROW(model.predict({1.0}), Error);
  EXPECT_NO_THROW(model.predict({1.0, 2.0}));
}

TEST(Gbt, DeterministicAcrossRefits) {
  Rng rng(5);
  auto [X, y] = make_data(200, 2, rng, [](const std::vector<double>& x) {
    return x[0] + x[1] * x[1];
  });
  Gbt a, b;
  a.fit(X, y);
  b.fit(X, y);
  for (const auto& row : X) EXPECT_DOUBLE_EQ(a.predict(row), b.predict(row));
}

TEST(Gbt, HandlesDuplicateFeatureValues) {
  // All rows share feature values but targets differ: must not split on
  // equal values, must fall back to the mean.
  Gbt model;
  std::vector<std::vector<double>> X(10, {1.0, 2.0});
  std::vector<double> y = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  model.fit(X, y);
  EXPECT_NEAR(model.predict({1.0, 2.0}), 0.5, 1e-6);
}

}  // namespace
}  // namespace convbound
