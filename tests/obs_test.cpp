// Tests for the obs tracing/metrics registry (src/obs) and its integration
// with the serving stack: ring semantics, concurrent record/drain, the
// Chrome trace and Prometheus text exports, and the per-stage latency
// accounting identity on a live server.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "convbound/obs/trace.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/obs_export.hpp"
#include "convbound/serve/server.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

TraceEvent instant_at(double ts_us, std::uint64_t rid) {
  TraceEvent e;
  e.ts_us = ts_us;
  e.request_id = rid;
  e.phase = TracePhase::kInstant;
  e.stage = TraceStage::kAdmit;
  return e;
}

// ------------------------------------------------------------- ring ----

TEST(TraceRecorder, RingWraparoundKeepsNewest) {
  ObsRegistry reg(/*ring_capacity=*/4);
  TraceRecorder& r = reg.create_recorder();
  for (std::uint64_t i = 0; i < 10; ++i)
    r.record(instant_at(static_cast<double>(i), i));
  EXPECT_EQ(r.recorded(), 10u);
  EXPECT_EQ(r.capacity(), 4u);
  const std::vector<TraceEvent> kept = r.events();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first, and exactly the newest window survives the overwrites.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].request_id, 6u + i);
    EXPECT_EQ(kept[i].tid, r.id());
  }
}

TEST(TraceRecorder, PartiallyFilledRingReturnsInOrder) {
  ObsRegistry reg(/*ring_capacity=*/8);
  TraceRecorder& r = reg.create_recorder();
  for (std::uint64_t i = 0; i < 3; ++i)
    r.record(instant_at(static_cast<double>(i), i));
  const std::vector<TraceEvent> kept = r.events();
  ASSERT_EQ(kept.size(), 3u);
  for (std::size_t i = 0; i < kept.size(); ++i)
    EXPECT_EQ(kept[i].request_id, i);
}

TEST(ObsRegistry, EventsSortedAcrossRecorders) {
  ObsRegistry reg(/*ring_capacity=*/16);
  TraceRecorder& a = reg.create_recorder();
  TraceRecorder& b = reg.create_recorder();
  a.record(instant_at(3.0, 3));
  b.record(instant_at(1.0, 1));
  a.record(instant_at(4.0, 4));
  b.record(instant_at(2.0, 2));
  const std::vector<TraceEvent> all = reg.events();
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].request_id, i + 1);
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(reg.num_recorders(), 2u);
}

// Threads record while the main thread repeatedly drains: every event is
// observed exactly once (no loss below ring capacity, no duplication), and
// TSan sees no races between the record and drain paths.
TEST(ObsRegistry, ConcurrentRecordersConsistentDrain) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  // Capacity holds every event, so the only way the count can come out
  // right is if record/drain interleave without losing or double-reading.
  ObsRegistry reg(/*ring_capacity=*/kThreads * kPerThread);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<TraceRecorder*> recorders(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t)
    recorders[t] = &reg.create_recorder();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        recorders[t]->record(instant_at(
            static_cast<double>(i),
            static_cast<std::uint64_t>(t) * kPerThread + i + 1));
    });
  }
  go.store(true);
  std::vector<TraceEvent> seen;
  // Drain concurrently with the writers, then once more after the join to
  // sweep the tail.
  for (int spin = 0; spin < 50; ++spin) {
    for (const TraceEvent& e : reg.drain()) seen.push_back(e);
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();
  for (const TraceEvent& e : reg.drain()) seen.push_back(e);

  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<bool> hit(kThreads * kPerThread + 1, false);
  for (const TraceEvent& e : seen) {
    ASSERT_GE(e.request_id, 1u);
    ASSERT_LE(e.request_id, static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_FALSE(hit[e.request_id]) << "event drained twice";
    hit[e.request_id] = true;
  }
}

// ------------------------------------------------- chrome trace JSON ----

// Minimal JSON scanner for the trace round-trip test: extracts the array
// of event objects and a few typed fields without a JSON dependency.
struct MiniEvent {
  std::string name;
  std::string ph;
  double ts = -1;
  double dur = -1;
  std::uint64_t request_id = 0;
  int pid = -1;
};

std::string field_str(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\":\"";
  const std::size_t at = obj.find(pat);
  if (at == std::string::npos) return {};
  const std::size_t start = at + pat.size();
  return obj.substr(start, obj.find('"', start) - start);
}

double field_num(const std::string& obj, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  std::size_t at = 0;
  // Skip matches inside nested objects (args) by scanning top level only:
  // fine here because our keys are unique per event object.
  at = obj.find(pat);
  if (at == std::string::npos) return -1;
  return std::stod(obj.substr(at + pat.size()));
}

std::vector<MiniEvent> parse_trace(const std::string& json) {
  const std::size_t arr = json.find("\"traceEvents\":[");
  EXPECT_NE(arr, std::string::npos);
  std::vector<MiniEvent> out;
  std::size_t pos = arr;
  int depth = 0;
  std::size_t obj_start = 0;
  for (std::size_t i = json.find('[', arr) + 1; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth == 0) obj_start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        const std::string obj = json.substr(obj_start, i - obj_start + 1);
        MiniEvent e;
        e.name = field_str(obj, "name");
        e.ph = field_str(obj, "ph");
        e.ts = field_num(obj, "ts");
        e.dur = field_num(obj, "dur");
        e.pid = static_cast<int>(field_num(obj, "pid"));
        const double rid = field_num(obj, "request_id");
        e.request_id = rid < 0 ? 0 : static_cast<std::uint64_t>(rid);
        out.push_back(std::move(e));
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
    (void)pos;
  }
  return out;
}

TEST(ObsRegistry, ChromeTraceRoundTrip) {
  ObsRegistry reg(/*ring_capacity=*/32);
  TraceRecorder& r = reg.create_recorder();
  TraceEvent span;
  span.ts_us = 100.25;
  span.dur_us = 50.5;
  span.request_id = 7;
  span.batch_id = 3;
  span.device = 1;
  span.phase = TracePhase::kSpan;
  span.stage = TraceStage::kExecute;
  r.record(span);
  r.record(instant_at(200.0, 8));

  const std::string json = reg.chrome_trace_json();
  const std::vector<MiniEvent> events = parse_trace(json);
  // Two real events + process_name metadata for each distinct pid.
  std::map<std::string, int> by_name;
  for (const MiniEvent& e : events) ++by_name[e.name];
  EXPECT_EQ(by_name["execute"], 1);
  EXPECT_EQ(by_name["admit"], 1);
  EXPECT_GE(by_name["process_name"], 2);  // front door + device 1

  for (const MiniEvent& e : events) {
    if (e.name == "execute") {
      EXPECT_EQ(e.ph, "X");
      EXPECT_NEAR(e.ts, 100.25, 1e-6);
      EXPECT_NEAR(e.dur, 50.5, 1e-6);
      EXPECT_EQ(e.request_id, 7u);
      EXPECT_EQ(e.pid, 2);  // device 1 -> pid 2 (pid 0 = front door)
    } else if (e.name == "admit") {
      EXPECT_EQ(e.ph, "i");
      EXPECT_EQ(e.request_id, 8u);
      EXPECT_EQ(e.pid, 0);
    }
  }
}

// --------------------------------------------------------- metrics ----

TEST(ObsRegistry, MetricsTextParses) {
  ObsRegistry reg;
  reg.set_counter("convbound_test_total", "job=\"t\"", 42,
                  "A test counter.");
  reg.set_gauge("convbound_test_gauge", "", 2.5);
  LatencyHistogram h;
  h.record(0.001);
  h.record(0.010);
  h.record(0.010);
  reg.set_histogram("convbound_test_seconds", "job=\"t\"", h);

  const std::string text = reg.metrics_text();
  EXPECT_NE(text.find("# TYPE convbound_test_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP convbound_test_total A test counter."),
            std::string::npos);
  EXPECT_NE(text.find("convbound_test_total{job=\"t\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_test_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE convbound_test_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_test_seconds_count{job=\"t\"} 3"),
            std::string::npos);
  EXPECT_NE(
      text.find("convbound_test_seconds_bucket{job=\"t\",le=\"+Inf\"} 3"),
      std::string::npos);

  // Structural sanity pass over every line: comments, or name{labels} value.
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(sp + 1))) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0]))) << line;
    ++samples;
  }
  EXPECT_GE(samples, 5u);

  // Cumulative bucket counts must be non-decreasing and end at _count.
  std::uint64_t prev = 0;
  bool saw_bucket = false;
  start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.rfind("convbound_test_seconds_bucket", 0) != 0) continue;
    saw_bucket = true;
    const std::uint64_t v = static_cast<std::uint64_t>(
        std::stoull(line.substr(line.rfind(' ') + 1)));
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_EQ(prev, 3u);
}

TEST(ObsRegistry, PublishSnapshotExportsServingMetrics) {
  ObsRegistry reg;
  StatsSnapshot s;
  s.submitted = 10;
  s.completed = 7;
  s.rejected = 2;
  s.quota_rejected = 1;
  s.shutdown_rejected = 3;
  s.queue_depth = 5;
  s.shard_depths = {2, 3};
  s.shard_max_depths = {4, 6};
  s.shard_imbalance = 1.2;
  s.latency.record(0.005);
  s.queue_wait.record(0.002);
  s.batch_delay.record(0.001);
  s.exec.record(0.002);
  ClassSnapshot& cls = s.classes["paid"];
  cls.submitted = 4;
  cls.shutdown_rejected = 1;
  publish_snapshot(reg, "job=\"test\"", s);
  const std::string text = reg.metrics_text();
  EXPECT_NE(text.find("convbound_requests_submitted_total{job=\"test\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_requests_shed_total{job=\"test\","
                      "reason=\"full\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_requests_shed_total{job=\"test\","
                      "reason=\"shutdown\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_shard_depth{job=\"test\",shard=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("convbound_stage_queue_wait_seconds_count"
                      "{job=\"test\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("convbound_class_requests_shed_total{job=\"test\","
                "class=\"paid\",reason=\"shutdown\"} 1"),
      std::string::npos);
}

// ------------------------------------------- live-server integration ----

ServedModel one_tiny_model() {
  Rng rng(20260808);
  std::vector<ConvLayer> layers;
  for (int l = 0; l < 2; ++l) {
    ConvShape s;
    s.cin = 2 * rng.range(1, 3);
    s.cout = 2 * rng.range(1, 3);
    s.hin = s.win = rng.range(8, 12);
    s.kh = s.kw = 3;
    s.stride = 1;
    s.pad = 1;
    s.validate();
    layers.push_back({"l" + std::to_string(l), s});
  }
  return make_served_model("tiny", layers, {});
}

// A saturated 1-worker server: stage histograms must satisfy the exact
// accounting identity sum(queue_wait) + sum(batch_delay) + sum(exec) ==
// sum(latency), because the engine computes the stages from the very
// timestamps the end-to-end latency uses.
TEST(ObsServe, StageAccountingIdentity) {
  std::vector<ServedModel> models = {one_tiny_model()};
  ServerOptions opts;
  opts.workers = 1;
  opts.max_delay = std::chrono::microseconds(500);
  opts.policy.max_bucket = 4;
  InferenceServer server(models, opts);
  server.start();

  constexpr int kRequests = 48;
  std::vector<std::future<InferResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(
        {"tiny", make_request_input(models[0], 100u + i)}));
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, ServeStatus::kOk);

  const StatsSnapshot s = server.stats();
  server.stop();

  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.latency.count(), static_cast<std::uint64_t>(kRequests));
  // Every completion contributes to every stage histogram.
  EXPECT_EQ(s.queue_wait.count(), s.latency.count());
  EXPECT_EQ(s.batch_delay.count(), s.latency.count());
  EXPECT_EQ(s.exec.count(), s.latency.count());
  // The identity: stage sums add up to the end-to-end sum (fp rounding).
  const double stage_sum =
      s.queue_wait.sum() + s.batch_delay.sum() + s.exec.sum();
  EXPECT_NEAR(stage_sum, s.latency.sum(),
              1e-9 * static_cast<double>(kRequests) + 1e-12);
  // A saturated 1-worker server queues: queue_wait is a real share.
  EXPECT_GT(s.queue_wait.sum(), 0.0);
  EXPECT_GT(s.exec.sum(), 0.0);
  // Derived stage percentiles came out of fill_latency_fields.
  EXPECT_GT(s.exec_p99, 0.0);
}

// With tracing enabled, a served load leaves a correlated event record:
// every completed request has an admit instant, a queue_wait span, and a
// complete instant under the same request id; batch events carry batch
// ids the per-request events reference.
TEST(ObsServe, TracedLoadIsCorrelated) {
  ObsRegistry::global().clear();
  ObsRegistry::set_enabled(true);
  std::vector<ServedModel> models = {one_tiny_model()};
  ServerOptions opts;
  opts.workers = 1;
  opts.policy.max_bucket = 4;
  InferenceServer server(models, opts);
  server.start();
  constexpr int kRequests = 16;
  std::vector<std::future<InferResponse>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(
        {"tiny", make_request_input(models[0], 300u + i)}));
  for (auto& f : futures)
    EXPECT_EQ(f.get().status, ServeStatus::kOk);
  server.stop();
  ObsRegistry::set_enabled(false);
  const std::vector<TraceEvent> events = ObsRegistry::global().drain();

  std::map<TraceStage, std::vector<const TraceEvent*>> by_stage;
  for (const TraceEvent& e : events) by_stage[e.stage].push_back(&e);
  ASSERT_GE(by_stage[TraceStage::kAdmit].size(),
            static_cast<std::size_t>(kRequests));
  ASSERT_GE(by_stage[TraceStage::kComplete].size(),
            static_cast<std::size_t>(kRequests));
  EXPECT_GE(by_stage[TraceStage::kExecute].size(), 1u);
  EXPECT_GE(by_stage[TraceStage::kLayerExec].size(),
            by_stage[TraceStage::kExecute].size());

  std::map<std::uint64_t, int> admit_ids;
  for (const TraceEvent* e : by_stage[TraceStage::kAdmit]) {
    EXPECT_GT(e->request_id, 0u);
    ++admit_ids[e->request_id];
  }
  std::set<std::uint64_t> batch_ids;
  for (const TraceEvent* e : by_stage[TraceStage::kBatchForm]) {
    EXPECT_GT(e->batch_id, 0u);
    batch_ids.insert(e->batch_id);
  }
  for (const TraceEvent* e : by_stage[TraceStage::kComplete]) {
    // Every completion's request id was admitted exactly once, and its
    // batch id belongs to a formed batch.
    EXPECT_EQ(admit_ids[e->request_id], 1);
    EXPECT_TRUE(batch_ids.count(e->batch_id) == 1) << e->batch_id;
    EXPECT_GT(e->value, 0.0);  // completion carries the latency
  }
  for (const TraceEvent* e : by_stage[TraceStage::kQueueWait]) {
    EXPECT_EQ(admit_ids[e->request_id], 1);
    EXPECT_GE(e->dur_us, 0.0);
  }
}

}  // namespace
}  // namespace convbound
