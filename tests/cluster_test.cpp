#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "convbound/cluster/cluster.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

// Workload pair at the two corners of the roofline: "compute" has high
// arithmetic intensity (5x5 kernel, many channels relative to its image;
// stride 2 keeps Winograd — which would slash the flop count — out of the
// candidate set), "wide" is bandwidth-bound (1x1, few channels, large
// image — almost no data reuse). On a fleet mixing a flop-optimized and a
// bandwidth-optimized spec, the cost model must send each to its corner.
ServedModel compute_heavy_model() {
  ConvShape s;
  s.cin = s.cout = 48;
  s.hin = s.win = 15;
  s.kh = s.kw = 5;
  s.stride = 2;
  s.pad = 2;
  s.validate();
  return make_served_model("compute", {{"c0", s}}, {});
}

ServedModel bandwidth_bound_model() {
  ConvShape s;
  s.cin = s.cout = 16;
  s.hin = s.win = 128;
  s.kh = s.kw = 1;
  s.pad = 0;
  s.validate();
  return make_served_model("wide", {{"w0", s}}, {});
}

// At the tests' scale, with max_bucket 4 (probed via Planner::enumerate in
// kMeasured mode — the predictions the cluster routes on):
//   compute on dense  9.8us/batch  vs on hbm 12.1us  -> dense preferred
//   wide    on hbm    5.2us/batch  vs on dense 20.2us -> hbm preferred

// Small pipelines with randomized geometries (fixed seed), as in
// serve_test: strided, grouped, and Winograd-eligible layers all appear,
// so every device's serving path exercises every dataflow family.
std::vector<ServedModel> tiny_models() {
  Rng rng(20260727);
  std::vector<ServedModel> models;
  for (int m = 0; m < 3; ++m) {
    std::vector<ConvLayer> layers;
    const int depth = 2 + m % 2;
    for (int l = 0; l < depth; ++l) {
      ConvShape s;
      s.cin = 2 * rng.range(1, 3);
      s.cout = 2 * rng.range(1, 3);
      s.hin = s.win = rng.range(8, 14);
      s.kh = s.kw = 3;
      s.stride = (m == 1 && l == 0) ? 2 : 1;
      s.pad = 1;
      if (m == 2 && l == 0) {  // grouped head
        s.cin = s.cout = 4;
        s.groups = 2;
      }
      s.validate();
      layers.push_back({"m" + std::to_string(m) + "_l" + std::to_string(l), s});
    }
    models.push_back(
        make_served_model("tiny" + std::to_string(m), layers, {}));
  }
  return models;
}

DeviceConfig device_of(const MachineSpec& spec, int workers = 2) {
  DeviceConfig d;
  d.spec = spec;
  d.workers = workers;
  return d;
}

ClusterOptions hetero_options() {
  ClusterOptions opts;
  opts.devices = {device_of(MachineSpec::v100()),
                  device_of(MachineSpec::bandwidth_optimized()),
                  device_of(MachineSpec::compute_optimized())};
  opts.max_queue = 1024;
  opts.max_delay = std::chrono::microseconds(500);
  opts.batch_policy.max_bucket = 4;
  return opts;
}

// ------------------------------------------------------------- router ----

Router::DeviceEntry entry(const std::string& name, double batch_seconds,
                          std::int64_t bucket, int cap) {
  Router::DeviceEntry e;
  e.name = name;
  e.max_pending_groups = cap;
  Router::ModelCost c;
  c.bucket = bucket;
  c.batch_seconds = batch_seconds;
  e.costs.emplace("m", c);
  return e;
}

TEST(Router, BoundAwarePrefersPredictedFastestPerRequest) {
  // "slow" wins on whole-batch time, "fast" wins per request thanks to its
  // bigger bucket — the per-request figure must decide. Scores per group:
  // slow idle (0 + 1.5)/1 = 1.5ms; fast idle (0 + 2.4)/4 = 0.6ms.
  Router router(RoutePolicy::kBoundAware,
                {entry("slow", 1.5e-3, 1, 4), entry("fast", 2.4e-3, 4, 4)});
  EXPECT_EQ(router.preferred_device("m"), 1);

  // Virtual-clock feedback: the fast device's accumulated predicted work
  // eventually tips one group to the slow one, then the preference swings
  // back — list scheduling in the proportions the cost model dictates.
  EXPECT_EQ(router.reserve("m").device, 1);  // fast virt 2.4, score 1.2
  EXPECT_EQ(router.reserve("m").device, 1);  // fast virt 4.8, score 1.8
  EXPECT_EQ(router.reserve("m").device, 0);  // slow virt 1.5, score 3.0
  EXPECT_EQ(router.reserve("m").device, 1);  // fast again (1.8 < 3.0)
  // Host-side completions drain the liveness caps but not the virtual
  // clocks — placement proportions must not depend on host speed.
  router.complete(1, "m");
  router.complete(1, "m");
  router.complete(1, "m");
  router.complete(0, "m");
  const Router::Snapshot s = router.snapshot();
  EXPECT_EQ(s.placements[0], 1u);
  EXPECT_EQ(s.placements[1], 3u);
  EXPECT_DOUBLE_EQ(s.virtual_seconds[0], 1.5e-3);
  EXPECT_DOUBLE_EQ(s.virtual_seconds[1], 3 * 2.4e-3);
  EXPECT_EQ(s.pending_groups[0], 0);
  EXPECT_EQ(s.pending_groups[1], 0);
}

TEST(Router, WorkStealingFallbackWhenPreferredSaturates) {
  Router router(RoutePolicy::kBoundAware,
                {entry("fast", 1.0e-3, 1, 2), entry("slow", 8.0e-3, 1, 2)});
  // Two reservations saturate "fast" (cap 2); the third must be stolen by
  // "slow" even though "fast" is still preferred.
  EXPECT_EQ(router.reserve("m").device, 0);
  EXPECT_EQ(router.reserve("m").device, 0);
  EXPECT_EQ(router.preferred_device("m"), 0);
  EXPECT_EQ(router.reserve("m").device, 1);
  const Router::Snapshot s = router.snapshot();
  EXPECT_EQ(s.stolen, 1u);
  EXPECT_EQ(s.placements[0], 2u);
  EXPECT_EQ(s.placements[1], 1u);
  router.complete(0, "m");
  router.complete(0, "m");
  router.complete(1, "m");
}

TEST(Router, RoundRobinIgnoresTheCostModel) {
  Router router(RoutePolicy::kRoundRobin,
                {entry("a", 1.0e-3, 1, 8), entry("b", 99.0, 1, 8),
                 entry("c", 1.0e-3, 1, 8)});
  std::vector<std::uint64_t> want = {2, 2, 2};
  for (int i = 0; i < 6; ++i) (void)router.reserve("m");
  EXPECT_EQ(router.snapshot().placements, want);
  EXPECT_EQ(router.snapshot().stolen, 0u);
  for (int i = 0; i < 2; ++i) {
    router.complete(0, "m");
    router.complete(1, "m");
    router.complete(2, "m");
  }
}

TEST(Router, RoundRobinPassingASaturatedTurnIsNotASteal) {
  // Regression: the steal counter used to compare round-robin placements
  // against the rotation's unconstrained pick, so every group placed while
  // any earlier-in-rotation device sat at its cap looked "stolen" — but RR
  // has no cost preference to steal from. Saturate "a" (cap 1) and keep
  // placing: groups flow to "b" with the counter untouched.
  Router router(RoutePolicy::kRoundRobin,
                {entry("a", 1.0e-3, 1, 1), entry("b", 1.0e-3, 1, 8)});
  EXPECT_EQ(router.reserve("m").device, 0);  // a now at its pending cap
  EXPECT_EQ(router.reserve("m").device, 1);
  EXPECT_EQ(router.reserve("m").device, 1);  // a's turn passes again
  const Router::Snapshot s = router.snapshot();
  EXPECT_EQ(s.stolen, 0u);
  EXPECT_EQ(s.placements[0], 1u);
  EXPECT_EQ(s.placements[1], 2u);
  // The cost-driven policies still count genuine steals (covered by
  // WorkStealingFallbackWhenPreferredSaturates above).
  router.complete(0, "m");
  router.complete(1, "m");
  router.complete(1, "m");
}

TEST(Router, PlacementCarriesTheDevicesOwnBucket) {
  Router router(RoutePolicy::kBoundAware,
                {entry("a", 4.0e-3, 4, 1), entry("b", 4.0e-3, 2, 1)});
  const Placement p0 = router.reserve("m");
  EXPECT_EQ(p0.device, 0);
  EXPECT_EQ(p0.bucket, 4);
  const Placement p1 = router.reserve("m");  // a saturated -> stolen by b
  EXPECT_EQ(p1.device, 1);
  EXPECT_EQ(p1.bucket, 2);
  router.complete(0, "m");
  router.complete(1, "m");
}

// -------------------------------------------- bound-aware heterogeneity ----

// The satellite routing test: with a flop-optimized and a
// bandwidth-optimized device in one fleet, the Eq 20/22 + roofline
// predictions must route the compute-heavy model to the high-FLOP spec and
// the bandwidth-bound model to the high-HBM spec — deterministically, from
// the analytic cost table alone (no measurement, empty fleet).
TEST(ClusterRouting, ComputeHeavyToDenseBandwidthBoundToHbm) {
  ClusterOptions opts;
  opts.devices = {device_of(MachineSpec::bandwidth_optimized(), 1),
                  device_of(MachineSpec::compute_optimized(), 1)};
  opts.batch_policy.max_bucket = 4;
  ClusterServer cluster({compute_heavy_model(), bandwidth_bound_model()},
                        opts);
  cluster.start();
  EXPECT_EQ(cluster.router().preferred_device("compute"), 1)
      << "compute-heavy model must prefer the flop-optimized spec";
  EXPECT_EQ(cluster.router().preferred_device("wide"), 0)
      << "bandwidth-bound model must prefer the bandwidth-optimized spec";
  cluster.stop();
}

// --------------------------------------------------- serving pipeline ----

TEST(Cluster, SingleRequestMatchesReference) {
  auto models = tiny_models();
  ClusterServer cluster(models, hetero_options());
  cluster.start();

  const Tensor4<float> input = make_request_input(models[1], 7);
  const InferResponse r = cluster.submit({models[1].name, input}).get();
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_GT(r.batch_size, 0);
  EXPECT_GT(r.batch_sim_seconds, 0);
  EXPECT_TRUE(allclose(reference_run(models[1], input), r.output, 1e-3, 1e-3));
  cluster.stop();
}

// The satellite stress test: N client threads x M models over a
// heterogeneous 3-device fleet; every response must match the
// single-threaded reference whichever device served it, and each device
// must hold the zero-plan-miss / zero-workspace-growth steady state after
// its warmup. Runs under ASan/UBSan in CI via the ctest glob.
TEST(Cluster, MultiThreadedStressMatchesReferenceWithZeroPlanMisses) {
  auto models = tiny_models();
  ClusterServer cluster(models, hetero_options());
  cluster.start();

  const ClusterSnapshot warm = cluster.stats();
  for (const DeviceSnapshot& d : warm.devices) {
    EXPECT_EQ(d.stats.plan_misses_after_warm, 0u) << d.name;
    EXPECT_GT(d.stats.plans_memoised, 0u) << d.name;
    EXPECT_GT(d.stats.workspace_buffers, 0u) << d.name;
  }

  constexpr int kClients = 6;
  constexpr int kPerClient = 12;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t seed = 1000u * c + i;
        const ServedModel& m = models[(c + i) % models.size()];
        const Tensor4<float> input = make_request_input(m, seed);
        InferResponse r = cluster.submit({m.name, input}).get();
        ASSERT_EQ(r.status, ServeStatus::kOk);
        const Tensor4<float> expect = reference_run(m, input);
        ASSERT_TRUE(allclose(expect, r.output, 1e-3, 1e-3))
            << m.name << " seed=" << seed
            << " maxdiff=" << max_abs_diff(expect, r.output);
        ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);

  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.fleet.completed,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.fleet.rejected, 0u);
  EXPECT_EQ(s.fleet.failed, 0u);
  // Per-device steady state: no planning, no workspace growth past warmup.
  ASSERT_EQ(s.devices.size(), warm.devices.size());
  std::uint64_t placements = 0;
  for (std::size_t i = 0; i < s.devices.size(); ++i) {
    const DeviceSnapshot& d = s.devices[i];
    EXPECT_EQ(d.stats.plan_misses_after_warm, 0u) << d.name;
    EXPECT_EQ(d.stats.plans_memoised, warm.devices[i].stats.plans_memoised)
        << d.name;
    EXPECT_EQ(d.stats.workspace_bytes, warm.devices[i].stats.workspace_bytes)
        << d.name;
    placements += d.placements;
  }
  EXPECT_EQ(placements, s.fleet.batches);
  // Every completed request went through some device's micro-batch.
  std::uint64_t grouped = 0;
  for (const auto& [size, count] : s.fleet.batch_histogram) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 4);  // max_bucket
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  EXPECT_EQ(grouped, s.fleet.completed);
  cluster.stop();
}

// ------------------------------------------------ backpressure & stop ----

TEST(Cluster, QueuedBeforeStartServedAfterAndShutdownAfterStop) {
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  opts.max_queue = 2;
  ClusterServer cluster(models, opts);

  const Tensor4<float> input = make_request_input(models[0], 1);
  auto f1 = cluster.submit({models[0].name, input});
  auto f2 = cluster.submit({models[0].name, input});
  auto f3 = cluster.submit({models[0].name, input});
  EXPECT_EQ(f3.get().status, ServeStatus::kRejected);  // bounded fleet queue

  cluster.start();
  EXPECT_EQ(f1.get().status, ServeStatus::kOk);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.fleet.rejected, 1u);
  EXPECT_EQ(s.fleet.completed, 2u);
  cluster.stop();

  EXPECT_EQ(cluster.submit({models[0].name, input}).get().status,
            ServeStatus::kShutdown);
  EXPECT_THROW(cluster.submit({"no-such-model", Tensor4<float>(1, 1, 1, 1)}),
               Error);
}

// ----------------------------------------------------- chaos lifecycle ----

TEST(Router, DeadDeviceIsExcludedUntilRevived) {
  Router router(RoutePolicy::kBoundAware,
                {entry("fast", 1.0e-3, 1, 4), entry("slow", 8.0e-3, 1, 4)});
  ASSERT_EQ(router.preferred_device("m"), 0);

  // Killing the preferred device routes everything through the existing
  // steal path: the survivor is both preference and placement.
  router.set_alive(0, false);
  EXPECT_FALSE(router.alive(0));
  EXPECT_EQ(router.preferred_device("m"), 1);
  EXPECT_EQ(router.reserve("m").device, 1);
  router.complete(1, "m");

  // Hot-join: revive with a refreshed cost row (bigger bucket, faster
  // batch); the next placement must already carry the new bucket.
  std::map<std::string, Router::ModelCost> costs;
  costs.emplace("m", Router::ModelCost{4, 0.5e-3});
  router.update_costs(0, std::move(costs));
  router.set_alive(0, true);
  EXPECT_TRUE(router.alive(0));
  EXPECT_EQ(router.preferred_device("m"), 0);
  const Placement p = router.reserve("m");
  EXPECT_EQ(p.device, 0);
  EXPECT_EQ(p.bucket, 4);
  router.complete(0, "m");
}

TEST(Router, CloseReturnsUnplacedOnFullyDeadFleet) {
  Router router(RoutePolicy::kBoundAware, {entry("only", 1.0e-3, 2, 4)});
  router.set_alive(0, false);
  // Not closed: a blocked reserve() would wait for a revive. Closed + fully
  // dead: reserve() must bail out with device = -1 instead of deadlocking
  // the shutdown path.
  router.close();
  const Placement p = router.reserve("m");
  EXPECT_EQ(p.device, -1);
}

TEST(Cluster, DeviceLossMidFlightLosesZeroRequests) {
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  // Slow drain (one worker each) with deep per-device queues so the failed
  // device is very likely holding stranded groups mid-flight.
  for (auto& d : opts.devices) {
    d.workers = 1;
    d.max_pending_groups = 6;
  }
  ClusterServer cluster(models, opts);
  cluster.start();

  constexpr int kRequests = 60;
  std::vector<std::future<InferResponse>> futs;
  std::vector<Tensor4<float>> inputs;
  for (int i = 0; i < kRequests; ++i) {
    const ServedModel& m = models[i % models.size()];
    inputs.push_back(make_request_input(m, 500u + i));
    futs.push_back(cluster.submit({m.name, inputs.back()}));
  }
  // Kill a device while its queue is hot, then keep submitting: the
  // survivors must absorb both the re-queued and the new traffic.
  const std::size_t requeued = cluster.fail_device(0);
  for (int i = 0; i < 10; ++i) {
    const ServedModel& m = models[i % models.size()];
    inputs.push_back(make_request_input(m, 900u + i));
    futs.push_back(cluster.submit({m.name, inputs.back()}));
  }

  // Zero silent loss: every accepted request resolves kOk and matches the
  // reference wherever it (re-)ran.
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const InferResponse r = futs[i].get();
    ASSERT_EQ(r.status, ServeStatus::kOk) << "request " << i;
    const ServedModel& m = models[i % models.size()];
    ASSERT_TRUE(allclose(reference_run(m, inputs[i]), r.output, 1e-3, 1e-3))
        << "request " << i;
  }

  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.fleet.completed, futs.size());
  EXPECT_EQ(s.device_failures, 1u);
  EXPECT_EQ(s.requeued_requests, static_cast<std::uint64_t>(requeued));
  ASSERT_FALSE(s.devices.empty());
  EXPECT_FALSE(s.devices[0].alive);
  for (std::size_t i = 1; i < s.devices.size(); ++i)
    EXPECT_TRUE(s.devices[i].alive) << s.devices[i].name;
  cluster.stop();
}

TEST(Cluster, WarmAndColdReviveRestoreServingWithoutPlanMisses) {
  auto models = tiny_models();
  ClusterServer cluster(models, hetero_options());
  cluster.start();

  const auto roundtrip = [&](std::uint64_t seed) {
    const ServedModel& m = models[seed % models.size()];
    const Tensor4<float> input = make_request_input(m, seed);
    const InferResponse r = cluster.submit({m.name, input}).get();
    ASSERT_EQ(r.status, ServeStatus::kOk);
    ASSERT_TRUE(allclose(reference_run(m, input), r.output, 1e-3, 1e-3));
  };
  roundtrip(1);

  // Warm revive: the engine (plans, sessions) survived the restart.
  cluster.fail_device(1);
  roundtrip(2);  // fleet keeps serving while d1 is down
  cluster.revive_device(1, ReviveMode::kWarm);
  roundtrip(3);

  // Cold revive: hot-join with a rebuilt, re-warmed engine. The router's
  // cost row is refreshed from the new warm-time predictions, and the
  // device reaches the same zero-plan-miss steady state as at fleet start.
  cluster.fail_device(1);
  cluster.revive_device(1, ReviveMode::kCold);
  for (std::uint64_t i = 4; i < 24; ++i) roundtrip(i);

  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.device_failures, 2u);
  EXPECT_EQ(s.device_revives, 2u);
  for (const DeviceSnapshot& d : s.devices) {
    EXPECT_TRUE(d.alive) << d.name;
    EXPECT_EQ(d.stats.plan_misses_after_warm, 0u) << d.name;
  }
  EXPECT_EQ(s.fleet.failed, 0u);
  cluster.stop();
}

TEST(Cluster, EngineSwapUnderTraffic) {
  // Regression for an unlocked engine-pointer read: ClusterDevice workers,
  // start(), and the engine()/stats() accessors used to read `engine_`
  // without engine_mu_, racing the cold revive's unique_ptr swap — a torn
  // read or use-after-free TSan flags and -Wthread-safety now rejects at
  // compile time (the member is CB_GUARDED_BY(engine_mu_)). Drive constant
  // traffic and stats polling while a chaos thread repeatedly fail()s and
  // cold-revives a device, so the swap lands under both kinds of readers.
  auto models = tiny_models();
  ClusterServer cluster(models, hetero_options());
  cluster.start();

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const ClusterSnapshot snap = cluster.stats();
      EXPECT_GE(snap.devices.size(), 2u);
      std::this_thread::yield();
    }
  });

  std::vector<std::future<InferResponse>> futs;
  std::vector<Tensor4<float>> inputs;
  constexpr int kColdRevives = 3;
  constexpr int kPerRound = 12;
  for (int round = 0; round < kColdRevives; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      const int r = round * kPerRound + i;
      const ServedModel& m = models[r % models.size()];
      inputs.push_back(make_request_input(m, 3000u + r));
      futs.push_back(cluster.submit({m.name, inputs.back()}));
    }
    // The swap itself: engine_ is destroyed and rebuilt while the poller
    // reads device stats and the surviving devices execute batches.
    cluster.fail_device(1);
    cluster.revive_device(1, ReviveMode::kCold);
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const InferResponse r = futs[i].get();
    ASSERT_EQ(r.status, ServeStatus::kOk) << "request " << i;
    const ServedModel& m = models[i % models.size()];
    ASSERT_TRUE(allclose(reference_run(m, inputs[i]), r.output, 1e-3, 1e-3))
        << "request " << i;
  }
  done.store(true, std::memory_order_relaxed);
  poller.join();

  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.device_failures, static_cast<std::uint64_t>(kColdRevives));
  EXPECT_EQ(s.device_revives, static_cast<std::uint64_t>(kColdRevives));
  EXPECT_EQ(s.fleet.completed, futs.size());
  cluster.stop();
}

// ------------------------------------------------- submit-vs-stop race ----

TEST(Cluster, SubmitRacingStopAlwaysResolves) {
  // Regression for the submit-vs-stop race: a submit that passes the
  // stopped_ fast-path while stop() is closing the fleet queue must resolve
  // kShutdown via the queue's own closed verdict — never hang the future.
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  ClusterServer cluster(models, opts);
  cluster.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 40;
  std::vector<std::vector<std::future<InferResponse>>> futs(kClients);
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const Tensor4<float> input =
          make_request_input(models[c % models.size()], 77u + c);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerClient; ++i)
        futs[c].push_back(
            cluster.submit({models[c % models.size()].name, input}));
    });
  }
  go = true;
  // Stop lands mid-hammering; some submits win the race, some lose.
  std::this_thread::sleep_for(std::chrono::microseconds(500));
  cluster.stop();
  for (auto& t : clients) t.join();

  for (auto& per_client : futs) {
    for (auto& f : per_client) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
                std::future_status::ready)
          << "submit racing stop() hung its future";
      const ServeStatus st = f.get().status;
      EXPECT_TRUE(st == ServeStatus::kOk || st == ServeStatus::kRejected ||
                  st == ServeStatus::kShutdown)
          << to_string(st);
    }
  }
}

TEST(Cluster, DeadDeviceRefusalLeavesTheGroupWithTheCaller) {
  // The deterministic core of the placement-vs-fail race below: a dead
  // device's enqueue() must refuse WITHOUT consuming the group. enqueue()
  // used to take the vector by value, so refusal destroyed the requests and
  // every waiting future threw broken_promise while the dispatch path
  // "re-queued" an empty vector.
  auto models = tiny_models();
  std::map<std::string, ServedModel> by_name;
  for (const ServedModel& m : models) by_name.emplace(m.name, m);
  ClusterOptions opts = hetero_options();
  ClusterDevice dev(by_name, device_of(MachineSpec::v100()),
                    opts.engine_options());
  dev.start();
  dev.fail();

  std::vector<PendingRequest> group;
  std::vector<std::future<InferResponse>> futs;
  for (int i = 0; i < 3; ++i) {
    PendingRequest p;
    p.request.model = models[0].name;
    p.request.input = make_request_input(models[0], 5u + i);
    p.enqueued = ServeClock::now();
    futs.push_back(p.promise.get_future());
    group.push_back(std::move(p));
  }
  bool reservation_returned = false;
  EXPECT_FALSE(dev.enqueue(std::move(group), models[0].name,
                           [&] { reservation_returned = true; }));
  EXPECT_FALSE(reservation_returned);  // refusal never ran the group
  ASSERT_EQ(group.size(), 3u) << "refusal consumed the group";
  for (std::size_t i = 0; i < group.size(); ++i) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    group[i].promise.set_value(std::move(r));  // promise must still be live
    EXPECT_EQ(futs[i].get().status, ServeStatus::kShutdown);
  }
}

TEST(Cluster, PlacementRacingFailNeverAbandonsRequests) {
  // Regression for a promise-destroying race: when fail_device() lands
  // between the Router's reserve() and the device's enqueue(), the dead
  // device refuses the group and the dispatch path re-queues it. enqueue()
  // used to take the group by value, so refusal destroyed the requests
  // (futures threw broken_promise) and re-queued an empty vector. Flip one
  // device dead/alive under client load until stop so the window is hit
  // over and over; every future must resolve with a real status.
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  ClusterServer cluster(models, opts);
  cluster.start();

  constexpr int kClients = 4;
  constexpr int kFlight = 8;       // in-flight futures per client per round
  constexpr int kMaxPerClient = 4000;  // runtime bound, not a target
  constexpr int kChaosCycles = 20;
  std::vector<std::vector<std::future<InferResponse>>> futs(kClients);
  std::atomic<bool> chaos_done{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const Tensor4<float> input =
          make_request_input(models[c % models.size()], 31u + c);
      // Closed loop in small flights: there are always requests in flight
      // while the chaos thread flips the device, and each round's wait
      // keeps the client alive for the whole churn.
      while (!chaos_done.load() &&
             futs[c].size() < static_cast<std::size_t>(kMaxPerClient)) {
        const std::size_t begin = futs[c].size();
        for (int i = 0; i < kFlight; ++i)
          futs[c].push_back(
              cluster.submit({models[c % models.size()].name, input}));
        for (std::size_t i = begin; i < futs[c].size(); ++i)
          futs[c][i].wait_for(std::chrono::seconds(60));
      }
    });
  }
  std::thread chaos([&] {
    for (int i = 0; i < kChaosCycles; ++i) {
      cluster.fail_device(0);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      cluster.revive_device(0, ReviveMode::kWarm);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    chaos_done = true;
  });
  chaos.join();
  for (auto& t : clients) t.join();
  const ClusterSnapshot snap = cluster.stats();
  cluster.stop();

  std::size_t served = 0;
  for (auto& per_client : futs) {
    for (auto& f : per_client) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "placement racing fail_device() abandoned a future";
      const ServeStatus st = f.get().status;
      EXPECT_TRUE(st == ServeStatus::kOk || st == ServeStatus::kRejected ||
                  st == ServeStatus::kShutdown)
          << to_string(st);
      if (st == ServeStatus::kOk) ++served;
    }
  }
  // The fleet kept serving through the churn (survivors absorb the load).
  EXPECT_GT(served, 0u);
  EXPECT_GE(snap.device_failures, 1u);
  EXPECT_EQ(snap.device_failures, snap.device_revives);
}

// --------------------------------------------------- lifecycle guards ----

TEST(Cluster, LifecycleMisuseFailsLoudly) {
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  {
    ClusterServer cluster(models, opts);
    EXPECT_THROW(cluster.fail_device(0), Error);  // before start
    cluster.start();
    EXPECT_THROW(cluster.start(), Error);              // double start
    EXPECT_THROW(cluster.fail_device(99), Error);      // unknown device
    EXPECT_THROW(cluster.revive_device(99, ReviveMode::kWarm), Error);
    // Reviving a live device is a misuse, not a no-op.
    EXPECT_THROW(cluster.revive_device(0, ReviveMode::kWarm), Error);
    cluster.stop();
    EXPECT_THROW(cluster.start(), Error);  // restart after stop
  }
  // Construction-time model validation fails the constructor loudly.
  ServedModel no_layers;
  no_layers.name = "empty";
  EXPECT_THROW(ClusterServer({no_layers}, opts), Error);
}

// ------------------------------------------------------ fleet tenancy ----

TEST(Cluster, TenantQuotaProtectsPaidHeadroomAtTheFrontDoor) {
  auto models = tiny_models();
  ClusterOptions opts = hetero_options();
  opts.max_queue = 8;
  opts.admission_congestion = 0.5;
  opts.classes = {TenantClass{"paid", 0, 3.0}, TenantClass{"free", 0, 1.0}};
  ClusterServer cluster(models, opts);

  // Not started: admission outcomes are deterministic. Shares: paid 6,
  // free 2; quotas bind at depth 4.
  const Tensor4<float> input = make_request_input(models[0], 21);
  std::vector<std::future<InferResponse>> free_futs, paid_futs;
  for (int i = 0; i < 5; ++i) {
    InferRequest r{models[0].name, input};
    r.tenant = "free";
    free_futs.push_back(cluster.submit(std::move(r)));
  }
  EXPECT_EQ(free_futs[4].get().status, ServeStatus::kQuotaExceeded);
  for (int i = 0; i < 4; ++i) {
    InferRequest r{models[0].name, input};
    r.tenant = "paid";
    paid_futs.push_back(cluster.submit(std::move(r)));
  }

  cluster.start();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(free_futs[i].get().status, ServeStatus::kOk);
    EXPECT_EQ(paid_futs[i].get().status, ServeStatus::kOk);
  }
  const ClusterSnapshot s = cluster.stats();
  EXPECT_EQ(s.fleet.quota_rejected, 1u);
  ASSERT_TRUE(s.fleet.classes.count("paid"));
  ASSERT_TRUE(s.fleet.classes.count("free"));
  EXPECT_EQ(s.fleet.classes.at("paid").completed, 4u);
  EXPECT_EQ(s.fleet.classes.at("free").completed, 4u);
  EXPECT_EQ(s.fleet.classes.at("free").quota_rejected, 1u);
  EXPECT_GT(s.fleet.classes.at("paid").latency_p99, 0.0);
  cluster.stop();
}

// ------------------------------------------------------- stats merge ----

TEST(ClusterStats, MergeIsParallelSemantics) {
  // Device a: 30 completions at 10ms over 10 batches of 3; device b: 10 at
  // 2ms, unbatched. Built through ServerStats so the merge sees exactly
  // what real devices report.
  ServerStats sa, sb;
  for (int i = 0; i < 10; ++i)
    sa.record_batch(3, 0.3, {0.010, 0.010, 0.010});
  for (int i = 0; i < 10; ++i) sb.record_batch(1, 0.1, {0.002});

  const StatsSnapshot m = merge_snapshots({sa.snapshot(), sb.snapshot()});
  EXPECT_EQ(m.completed, 40u);
  EXPECT_EQ(m.batches, 20u);
  EXPECT_DOUBLE_EQ(m.sim_seconds, 4.0);
  // Makespan figure: 40 requests done when the busiest device finishes.
  EXPECT_DOUBLE_EQ(m.modelled_rps, 40.0 / 3.0);
  // Exact percentiles of the *combined* population (30x 10ms + 10x 2ms):
  // the true p50 is 10ms — not the 8ms the old completed-weighted average
  // of per-device p50s reported — and the merged histogram holds every
  // completion.
  EXPECT_NEAR(m.latency_p50, 0.010, 0.010 * 0.05);
  EXPECT_NEAR(m.latency_p99, 0.010, 0.010 * 0.05);
  EXPECT_EQ(m.latency.count(), 40u);
  EXPECT_DOUBLE_EQ(m.latency_max, 0.010);
  EXPECT_DOUBLE_EQ(m.latency_mean, (30 * 0.010 + 10 * 0.002) / 40.0);
  EXPECT_DOUBLE_EQ(m.mean_batch_size, 2.0);
}

}  // namespace
}  // namespace convbound
