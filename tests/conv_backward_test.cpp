// Gradient correctness: the backward references are validated against
// finite differences of the forward reference (the gold standard for
// autograd implementations).
#include <gtest/gtest.h>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/conv/backward.hpp"
#include "convbound/conv/reference.hpp"

namespace convbound {
namespace {

ConvShape bshape(std::int64_t cin, std::int64_t hw, std::int64_t cout,
                 std::int64_t k, std::int64_t stride, std::int64_t pad,
                 std::int64_t groups = 1) {
  ConvShape s;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.groups = groups;
  s.validate();
  return s;
}

/// Scalar loss L = sum(out * grad_seed); dL/dout = grad_seed.
double loss(const Tensor4<float>& out, const Tensor4<float>& seed) {
  double l = 0;
  for (std::int64_t i = 0; i < out.size(); ++i)
    l += static_cast<double>(out.data()[i]) *
         static_cast<double>(seed.data()[i]);
  return l;
}

class BackwardGradCheck : public ::testing::TestWithParam<ConvShape> {};

TEST_P(BackwardGradCheck, DataGradientMatchesFiniteDifference) {
  const ConvShape s = GetParam();
  ConvProblem p = make_problem(s, 97);
  Rng rng(13);
  Tensor4<float> seed(s.batch, s.cout, s.hout(), s.wout());
  seed.fill_random(rng);

  const Tensor4<float> grad_in =
      conv2d_backward_data_ref(seed, p.weights, s);

  const double eps = 1e-3;
  // Probe a handful of input positions.
  for (int probe = 0; probe < 6; ++probe) {
    const std::int64_t i = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(p.input.size())));
    const float orig = p.input.data()[i];
    p.input.data()[i] = orig + static_cast<float>(eps);
    const double lp = loss(conv2d_ref(p.input, p.weights, s), seed);
    p.input.data()[i] = orig - static_cast<float>(eps);
    const double lm = loss(conv2d_ref(p.input, p.weights, s), seed);
    p.input.data()[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, 5e-2)
        << s.to_string() << " probe " << i;
  }
}

TEST_P(BackwardGradCheck, WeightGradientMatchesFiniteDifference) {
  const ConvShape s = GetParam();
  ConvProblem p = make_problem(s, 101);
  Rng rng(17);
  Tensor4<float> seed(s.batch, s.cout, s.hout(), s.wout());
  seed.fill_random(rng);

  const Tensor4<float> grad_w =
      conv2d_backward_weights_ref(p.input, seed, s);
  ASSERT_EQ(grad_w.n(), s.cout);
  ASSERT_EQ(grad_w.c(), s.cin_per_group());

  const double eps = 1e-3;
  for (int probe = 0; probe < 6; ++probe) {
    const std::int64_t i = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(p.weights.size())));
    const float orig = p.weights.data()[i];
    p.weights.data()[i] = orig + static_cast<float>(eps);
    const double lp = loss(conv2d_ref(p.input, p.weights, s), seed);
    p.weights.data()[i] = orig - static_cast<float>(eps);
    const double lm = loss(conv2d_ref(p.input, p.weights, s), seed);
    p.weights.data()[i] = orig;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_w.data()[i], numeric, 5e-2)
        << s.to_string() << " probe " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackwardGradCheck,
    ::testing::Values(bshape(2, 6, 3, 3, 1, 1),      // basic
                      bshape(3, 8, 2, 3, 2, 1),      // strided
                      bshape(1, 7, 4, 5, 1, 2),      // 5x5
                      bshape(2, 6, 2, 1, 1, 0),      // 1x1
                      bshape(4, 8, 4, 3, 1, 1, 2),   // grouped
                      bshape(4, 6, 4, 3, 1, 1, 4))); // depthwise

TEST(BackwardShapes, DataEquivalentRecoversForwardCost) {
  const ConvShape s = bshape(16, 28, 32, 3, 1, 1);
  const ConvShape b = backward_data_equivalent_shape(s);
  // Near-identical MAC count to the forward pass (the equivalent problem
  // also produces gradients for the padding ring, a ~(1 + 2p/h)^2 factor).
  EXPECT_NEAR(static_cast<double>(b.flops()) /
                  static_cast<double>(s.flops()),
              1.0, 0.25);
  EXPECT_EQ(b.cin, s.cout);
  EXPECT_EQ(b.cout, s.cin);
  // And therefore a lower bound of the same order.
  const double S = 8192;
  const double fwd = direct_conv_lower_bound_leading(s, S);
  const double bwd = direct_conv_lower_bound_leading(b, S);
  EXPECT_GT(bwd, 0.3 * fwd);
  EXPECT_LT(bwd, 3.0 * fwd);
}

TEST(BackwardShapes, StridedDataEquivalentIsDilated) {
  const ConvShape s = bshape(8, 16, 8, 3, 2, 1);
  const ConvShape b = backward_data_equivalent_shape(s);
  EXPECT_EQ(b.hin, (s.hout() - 1) * 2 + 1);
  EXPECT_EQ(b.stride, 1);
  EXPECT_EQ(b.pad, s.kh - 1);
}

TEST(BackwardShapes, WeightsEquivalentCountsReduction) {
  const ConvShape s = bshape(8, 14, 16, 3, 1, 1);
  const ConvShape b = backward_weights_equivalent_shape(s);
  EXPECT_EQ(b.kh, s.hout());
  EXPECT_EQ(b.cout, s.cin);
  EXPECT_EQ(b.cin, s.cout);
  // Output of the equivalent problem = one kh x kw plane per (cin) channel.
  EXPECT_EQ(b.hout(), s.kh);
  EXPECT_EQ(b.wout(), s.kw);
  EXPECT_EQ(b.flops(), s.flops());
}

TEST(BackwardShapes, MappingRejectsGroups) {
  const ConvShape s = bshape(4, 8, 4, 3, 1, 1, 2);
  EXPECT_THROW(backward_data_equivalent_shape(s), Error);
  EXPECT_THROW(backward_weights_equivalent_shape(s), Error);
}

}  // namespace
}  // namespace convbound
