#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "convbound/serve/batch_policy.hpp"
#include "convbound/serve/model.hpp"
#include "convbound/serve/queue.hpp"
#include "convbound/serve/server.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

// Small pipelines with randomized geometries (fixed seed): strided,
// grouped, and Winograd-eligible layers all appear across the three
// models, so the serving path exercises every dataflow family.
std::vector<ServedModel> tiny_models() {
  Rng rng(20260727);
  std::vector<ServedModel> models;
  for (int m = 0; m < 3; ++m) {
    std::vector<ConvLayer> layers;
    const int depth = 2 + m % 2;
    for (int l = 0; l < depth; ++l) {
      ConvShape s;
      s.cin = 2 * rng.range(1, 3);
      s.cout = 2 * rng.range(1, 3);
      s.hin = s.win = rng.range(8, 14);
      s.kh = s.kw = 3;
      s.stride = (m == 1 && l == 0) ? 2 : 1;
      s.pad = 1;
      if (m == 2 && l == 0) {  // grouped head
        s.cin = s.cout = 4;
        s.groups = 2;
      }
      s.validate();
      layers.push_back({"m" + std::to_string(m) + "_l" + std::to_string(l), s});
    }
    models.push_back(
        make_served_model("tiny" + std::to_string(m), layers, {}));
  }
  return models;
}

ServerOptions tiny_options() {
  ServerOptions opts;
  opts.machine = MachineSpec::v100();
  opts.workers = 3;
  opts.replicas = 2;
  opts.max_queue = 512;
  opts.max_delay = std::chrono::microseconds(500);
  opts.policy.max_bucket = 4;
  return opts;
}

// ------------------------------------------------------ request queue ----

TEST(RequestQueue, BoundedPushAndGroupCollect) {
  RequestQueue q(2);
  auto pending = [](const std::string& model) {
    PendingRequest p;
    p.request.model = model;
    p.enqueued = ServeClock::now();
    return p;
  };
  EXPECT_EQ(q.push(pending("a")), RequestQueue::Admit::kOk);
  EXPECT_EQ(q.push(pending("b")), RequestQueue::Admit::kOk);
  EXPECT_EQ(q.push(pending("a")),
            RequestQueue::Admit::kFull);  // full -> backpressure
  EXPECT_EQ(q.depth(), 2u);

  std::string model;
  ServeTimePoint enq;
  ASSERT_TRUE(q.wait_front(&model, &enq));
  EXPECT_EQ(model, "a");

  // Collecting "a" must skip the interleaved "b" and return immediately
  // once the deadline passes with only one matching entry.
  auto group = q.collect("a", 4, ServeClock::now());
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].request.model, "a");
  EXPECT_EQ(q.depth(), 1u);

  q.close();
  EXPECT_EQ(q.push(pending("c")), RequestQueue::Admit::kClosed);
  auto rest = q.collect("b", 4, ServeTimePoint::max());  // closed: no wait
  ASSERT_EQ(rest.size(), 1u);
  ASSERT_FALSE(q.wait_front(&model, &enq));  // closed + drained
}

TEST(RequestQueue, ExpiredEntriesAreAnsweredAndFreeCapacity) {
  // Regression: expired requests used to sit in the queue (consuming
  // backpressure budget) until batch-collect time. The queue now answers
  // them in wait_front/collect sweeps.
  RequestQueue q(2);
  std::size_t expired_reported = 0;
  q.set_on_expired(
      [&](std::size_t, std::size_t n) { expired_reported += n; });
  const auto pending = [](const std::string& model, ServeTimePoint deadline) {
    PendingRequest p;
    p.request.model = model;
    p.request.deadline = deadline;
    p.enqueued = ServeClock::now();
    return p;
  };

  PendingRequest dead = pending("a", ServeClock::now() - std::chrono::seconds(1));
  std::future<InferResponse> dead_fut = dead.promise.get_future();
  ASSERT_EQ(q.push(std::move(dead)), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("b", ServeTimePoint::max())),
            RequestQueue::Admit::kOk);

  // A push at capacity sweeps dead occupants instead of charging live
  // traffic a rejection: the dead entry is answered and "c" takes its slot.
  EXPECT_EQ(q.push(pending("c", ServeTimePoint::max())),
            RequestQueue::Admit::kOk);
  ASSERT_EQ(dead_fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const InferResponse r = dead_fut.get();
  EXPECT_EQ(r.status, ServeStatus::kDeadlineExceeded);
  EXPECT_GT(r.latency_seconds, 0);
  EXPECT_EQ(expired_reported, 1u);
  EXPECT_EQ(q.depth(), 2u);
  // Genuinely full of live requests: backpressure stands.
  EXPECT_EQ(q.push(pending("d", ServeTimePoint::max())),
            RequestQueue::Admit::kFull);

  // wait_front reports the *live* front (the dead "a" is long gone).
  std::string model;
  ServeTimePoint enq;
  ASSERT_TRUE(q.wait_front(&model, &enq));
  EXPECT_EQ(model, "b");

  // collect sweeps too: a dead "b" never joins a "b" group.
  PendingRequest dead_b =
      pending("b", ServeClock::now() - std::chrono::seconds(1));
  std::future<InferResponse> dead_b_fut = dead_b.promise.get_future();
  q.drain();
  ASSERT_EQ(q.push(std::move(dead_b)), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("b", ServeTimePoint::max())),
            RequestQueue::Admit::kOk);
  const auto group = q.collect("b", 4, ServeClock::now());
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].request.deadline, ServeTimePoint::max());
  EXPECT_EQ(dead_b_fut.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(expired_reported, 2u);
}

// ------------------------------------------------------- batch policy ----

TEST(BatchPolicy, BoundGuidedBucketSitsAtTheKnee) {
  const auto models = tiny_models();
  BatchPolicyOptions opts;
  opts.max_bucket = 8;
  const BucketChoice c =
      choose_batch_bucket(models[0], MachineSpec::v100(), opts);
  ASSERT_EQ(c.scores.size(), 4u);  // 1, 2, 4, 8
  // Launch-overhead amortisation: per-request predicted time never gets
  // worse with batching on these tiny layers.
  for (std::size_t i = 1; i < c.scores.size(); ++i)
    EXPECT_LE(c.scores[i].predicted_seconds_per_request,
              c.scores[i - 1].predicted_seconds_per_request * 1.001);
  EXPECT_GT(c.bucket, 1);  // batching predicted to pay off
  // The chosen bucket is a scored candidate and marked as chosen.
  bool found = false;
  for (const auto& s : c.scores)
    if (s.bucket == c.bucket) found = s.chosen;
  EXPECT_TRUE(found);

  // A tight latency budget forces small batches.
  BatchPolicyOptions tight = opts;
  tight.latency_budget_seconds = 1e-12;
  EXPECT_EQ(choose_batch_bucket(models[0], MachineSpec::v100(), tight).bucket,
            1);
}

// --------------------------------------------------- serving pipeline ----

TEST(Serve, SingleRequestMatchesReference) {
  auto models = tiny_models();
  InferenceServer server(models, tiny_options());
  server.start();

  const Tensor4<float> input = make_request_input(models[1], 7);
  auto fut = server.submit({models[1].name, input});
  const InferResponse r = fut.get();
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_GT(r.batch_size, 0);
  EXPECT_GT(r.batch_sim_seconds, 0);

  const Tensor4<float> expect = reference_run(models[1], input);
  EXPECT_TRUE(allclose(expect, r.output, 1e-3, 1e-3))
      << "maxdiff=" << max_abs_diff(expect, r.output);
  server.stop();
}

// The satellite stress test: N client threads x M models with randomized
// shapes; every response must match the single-threaded reference, and
// steady-state serving must hit zero plan-cache misses and zero workspace
// growth after warmup.
TEST(Serve, MultiThreadedStressMatchesReferenceWithZeroPlanMisses) {
  auto models = tiny_models();
  InferenceServer server(models, tiny_options());
  server.start();

  const StatsSnapshot warm = server.stats();
  EXPECT_EQ(warm.plan_misses_after_warm, 0u);
  EXPECT_GT(warm.plans_memoised, 0u);
  EXPECT_GT(warm.workspace_buffers, 0u);

  constexpr int kClients = 6;
  constexpr int kPerClient = 12;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::uint64_t seed = 1000u * c + i;
        const ServedModel& m = models[(c + i) % models.size()];
        const Tensor4<float> input = make_request_input(m, seed);
        InferResponse r = server.submit({m.name, input}).get();
        ASSERT_EQ(r.status, ServeStatus::kOk);
        const Tensor4<float> expect = reference_run(m, input);
        ASSERT_TRUE(allclose(expect, r.output, 1e-3, 1e-3))
            << m.name << " seed=" << seed
            << " maxdiff=" << max_abs_diff(expect, r.output);
        ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kPerClient);

  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.failed, 0u);
  // Steady state: no planning, no workspace growth past warmup.
  EXPECT_EQ(s.plan_misses_after_warm, 0u);
  EXPECT_EQ(s.plans_memoised, warm.plans_memoised);
  EXPECT_EQ(s.workspace_buffers, warm.workspace_buffers);
  EXPECT_EQ(s.workspace_bytes, warm.workspace_bytes);
  // Every completed request went through a micro-batch.
  std::uint64_t grouped = 0;
  for (const auto& [size, count] : s.batch_histogram) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 4);  // max_bucket
    grouped += static_cast<std::uint64_t>(size) * count;
  }
  EXPECT_EQ(grouped, s.completed);
  server.stop();
}

// ------------------------------------------------ backpressure & stop ----

TEST(Serve, BackpressureRejectsDeterministicallyBeforeStart) {
  auto models = tiny_models();
  ServerOptions opts = tiny_options();
  opts.max_queue = 2;
  InferenceServer server(models, opts);

  // Not started: nothing drains the queue, so the third submit must be
  // rejected by the bounded queue.
  const Tensor4<float> input = make_request_input(models[0], 1);
  auto f1 = server.submit({models[0].name, input});
  auto f2 = server.submit({models[0].name, input});
  auto f3 = server.submit({models[0].name, input});
  EXPECT_EQ(f3.get().status, ServeStatus::kRejected);

  server.start();  // now the two queued requests get served
  EXPECT_EQ(f1.get().status, ServeStatus::kOk);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.completed, 2u);
  server.stop();

  // After stop, submits complete immediately with kShutdown.
  EXPECT_EQ(server.submit({models[0].name, input}).get().status,
            ServeStatus::kShutdown);
}

TEST(Serve, ExpiredDeadlineIsDroppedNotExecuted) {
  auto models = tiny_models();
  InferenceServer server(models, tiny_options());
  const Tensor4<float> input = make_request_input(models[0], 3);

  InferRequest expired{models[0].name, input,
                       ServeClock::now() - std::chrono::seconds(1)};
  auto f1 = server.submit(std::move(expired));
  auto f2 = server.submit({models[0].name, input});  // no deadline
  server.start();

  EXPECT_EQ(f1.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(f2.get().status, ServeStatus::kOk);
  EXPECT_EQ(server.stats().expired, 1u);
  server.stop();
}

TEST(Serve, ExpiredSubmitUnderSaturationResolvesAndFreesQueueBudget) {
  // A saturated server: enough queued work that an expired request would
  // previously ride the whole max-delay + executor-slot wait before its
  // kDeadlineExceeded resolved, holding a queue slot the entire time. The
  // queue-level sweep must answer it and give the slot back to live
  // traffic.
  auto models = tiny_models();
  ServerOptions opts = tiny_options();
  opts.workers = 1;
  opts.max_queue = 64;
  InferenceServer server(models, opts);
  server.start();

  const Tensor4<float> input = make_request_input(models[0], 5);
  std::vector<std::future<InferResponse>> live;
  for (int i = 0; i < 24; ++i)
    live.push_back(server.submit({models[0].name, input}));
  auto dead = server.submit({models[0].name, input,
                             ServeClock::now() - std::chrono::seconds(1)});
  for (int i = 0; i < 24; ++i)
    live.push_back(server.submit({models[0].name, input}));

  EXPECT_EQ(dead.get().status, ServeStatus::kDeadlineExceeded);
  for (auto& f : live) EXPECT_EQ(f.get().status, ServeStatus::kOk);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.expired, 1u);
  EXPECT_EQ(s.completed, 48u);
  EXPECT_EQ(s.rejected, 0u);
  server.stop();
}

TEST(BatchPolicy, FeasibilityChargesTheGroupFormationDelay) {
  // The budget must cover max_delay + predicted batch time: a bucket whose
  // batch alone fits is still infeasible when the scheduler's formation
  // window eats the headroom.
  const auto models = tiny_models();
  const MachineSpec spec = MachineSpec::v100();
  BatchPolicyOptions free_opts;
  free_opts.max_bucket = 2;
  free_opts.latency_budget_seconds = 0;  // unconstrained probe
  const double b1 =
      score_batch_bucket(models[0], spec, 1, free_opts).predicted_batch_seconds;
  const double b2 =
      score_batch_bucket(models[0], spec, 2, free_opts).predicted_batch_seconds;
  ASSERT_GT(b2, b1);

  // Budget B with b2 <= B (old rule: bucket 2 feasible) but
  // delay + b2 > B >= delay + b1 (new rule: only bucket 1 fits).
  BatchPolicyOptions opts;
  opts.max_bucket = 2;
  opts.max_delay_seconds = b2;
  opts.latency_budget_seconds = b2 + (b1 + b2) / 2;
  const BucketChoice constrained = choose_batch_bucket(models[0], spec, opts);
  EXPECT_EQ(constrained.bucket, 1);
  for (const auto& s : constrained.scores) {
    if (s.bucket == 2) {
      EXPECT_FALSE(s.feasible);
    }
  }

  // Same budget with no formation delay: bucket 2 is back on the table.
  BatchPolicyOptions no_delay = opts;
  no_delay.max_delay_seconds = 0;
  for (const auto& s : choose_batch_bucket(models[0], spec, no_delay).scores)
    EXPECT_TRUE(s.feasible) << "bucket " << s.bucket;

  // Boundary: the budget exactly covers delay + batch -> feasible.
  BatchPolicyOptions exact = opts;
  exact.latency_budget_seconds = exact.max_delay_seconds + b2;
  const BucketChoice at_edge = choose_batch_bucket(models[0], spec, exact);
  for (const auto& s : at_edge.scores) {
    if (s.bucket == 2) {
      EXPECT_TRUE(s.feasible);
    }
  }
}

TEST(Serve, RejectsMalformedRequests) {
  auto models = tiny_models();
  InferenceServer server(models, tiny_options());
  EXPECT_THROW(server.submit({"no-such-model", Tensor4<float>(1, 1, 1, 1)}),
               Error);
  Tensor4<float> wrong(1, models[0].input_c() + 1, models[0].input_h(),
                       models[0].input_w());
  EXPECT_THROW(server.submit({models[0].name, wrong}), Error);
}

// ------------------------------------------------ shared tune cache ------

TEST(Serve, TunedPlanningSharesTheThreadSafeCache) {
  auto models = tiny_models();
  ServerOptions opts = tiny_options();
  opts.plan_mode = PlanMode::kTuned;
  opts.tune_budget = 4;
  InferenceServer server(models, opts);
  // Warmup tunes through the one shared TuneCache; the second replica of
  // each (model, bucket) hits the entries the first replica autotuned.
  server.start();
  EXPECT_GT(server.tune_cache().size(), 0u);

  const Tensor4<float> input = make_request_input(models[0], 11);
  InferResponse r = server.submit({models[0].name, input}).get();
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_TRUE(allclose(reference_run(models[0], input), r.output, 1e-3, 1e-3));
  EXPECT_EQ(server.stats().plan_misses_after_warm, 0u);
  server.stop();
}

// ------------------------------------------------- tenancy & admission ----

TEST(RequestQueue, EdfOrdersByEffectiveDeadline) {
  RequestQueue q(8);
  const auto now = ServeClock::now();
  const auto at = [&](int ms) { return now + std::chrono::milliseconds(ms); };
  const auto pending = [&](const std::string& model, ServeTimePoint deadline,
                           ServeTimePoint class_deadline, int arrival_ms) {
    PendingRequest p;
    p.request.model = model;
    p.request.deadline = deadline;
    p.class_deadline = class_deadline;
    p.enqueued = at(arrival_ms);
    return p;
  };

  // "far" arrives first with no deadline; "tight" arrives later but its
  // class budget makes it more urgent — wait_front must surface it.
  ASSERT_EQ(q.push(pending("far", ServeTimePoint::max(),
                           ServeTimePoint::max(), 0)),
            RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("tight", ServeTimePoint::max(),
                           at(60'000), 1)),
            RequestQueue::Admit::kOk);
  std::string model;
  ServeTimePoint enq;
  ASSERT_TRUE(q.wait_front(&model, &enq));
  EXPECT_EQ(model, "tight");

  // Within one model, collect returns most-urgent-first on the effective
  // deadline (min of explicit deadline and class budget), not FIFO.
  ASSERT_EQ(q.push(pending("x", at(90'000), ServeTimePoint::max(), 2)),
            RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("x", ServeTimePoint::max(), at(30'000), 3)),
            RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending("x", at(70'000), at(50'000), 4)),
            RequestQueue::Admit::kOk);
  const auto group = q.collect("x", 2, ServeClock::now());
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].effective_deadline(), at(30'000));
  EXPECT_EQ(group[1].effective_deadline(), at(50'000));
  EXPECT_EQ(q.depth(), 3u);  // far, tight, and the 90s "x" stay queued
}

TEST(RequestQueue, EdfFifoTieOrderSurvivesOrderedMapStore) {
  // Pin the ordering contract across the data-structure swap (deque +
  // O(n) most-urgent scan -> map sorted on (effective_deadline, enqueued,
  // seq)): identical effective deadlines fall back to arrival order, and
  // identical arrivals fall back to insertion order — plain FIFO for
  // deadline-free traffic.
  RequestQueue q(16);
  const auto now = ServeClock::now();
  const auto at = [&](int ms) { return now + std::chrono::milliseconds(ms); };
  const auto pending = [&](ServeTimePoint deadline, ServeTimePoint enqueued,
                           int tag) {
    PendingRequest p;
    p.request.model = "m";
    p.request.deadline = deadline;
    p.enqueued = enqueued;
    p.request.tenant = "t" + std::to_string(tag);  // identifies the entry
    return p;
  };

  // Same deadline, different arrivals (pushed out of arrival order).
  ASSERT_EQ(q.push(pending(at(60'000), at(2), 1)), RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending(at(60'000), at(1), 0)), RequestQueue::Admit::kOk);
  // No deadline at all, identical arrival timestamps: insertion order.
  ASSERT_EQ(q.push(pending(ServeTimePoint::max(), at(3), 2)),
            RequestQueue::Admit::kOk);
  ASSERT_EQ(q.push(pending(ServeTimePoint::max(), at(3), 3)),
            RequestQueue::Admit::kOk);
  // A later-pushed but more urgent deadline still jumps the whole line.
  ASSERT_EQ(q.push(pending(at(30'000), at(4), 4)), RequestQueue::Admit::kOk);

  const auto group = q.collect("m", 5, ServeClock::now());
  ASSERT_EQ(group.size(), 5u);
  EXPECT_EQ(group[0].request.tenant, "t4");  // EDF first
  EXPECT_EQ(group[1].request.tenant, "t0");  // tie -> earlier arrival
  EXPECT_EQ(group[2].request.tenant, "t1");
  EXPECT_EQ(group[3].request.tenant, "t2");  // tie on arrival -> insertion
  EXPECT_EQ(group[4].request.tenant, "t3");
}

TEST(RequestQueue, PushReportsPostInsertDepth) {
  // Satellite fix for the submit double-lock: the depth the stats need
  // comes out of push under the same lock as the insert.
  RequestQueue q(4);
  std::size_t depth_after = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    PendingRequest p;
    p.request.model = "m";
    p.enqueued = ServeClock::now();
    ASSERT_EQ(q.push(std::move(p), &depth_after), RequestQueue::Admit::kOk);
    EXPECT_EQ(depth_after, i + 1);
    EXPECT_EQ(q.depth(), depth_after);
  }
}

TEST(RequestQueue, WeightedFairQuotaBindsOnlyAboveCongestion) {
  // capacity 8, paid:free weights 3:1 -> shares 6 and 2; congestion 0.5
  // -> quotas bind once 4 entries are queued.
  const TenantTable table({TenantClass{"paid", 0, 3.0},
                           TenantClass{"free", 0, 1.0}});
  RequestQueue q(8);
  q.set_tenancy(&table, 0.5);
  const auto pending = [&](const std::string& cls) {
    PendingRequest p;
    p.request.model = "m";
    p.class_index = table.resolve(cls);
    p.tenant_class = cls;
    p.enqueued = ServeClock::now();
    return p;
  };

  // Work-conserving below the threshold: free fills past its share of 2.
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.push(pending("free")), RequestQueue::Admit::kOk) << i;
  // At the threshold the over-share class is cut off...
  EXPECT_EQ(q.push(pending("free")), RequestQueue::Admit::kQuota);
  EXPECT_EQ(q.class_depth(table.resolve("free")), 4u);
  // ...while the under-share class still has protected headroom.
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(q.push(pending("paid")), RequestQueue::Admit::kOk) << i;
  // Genuinely full now: capacity, not quota, rejects either class.
  EXPECT_EQ(q.push(pending("paid")), RequestQueue::Admit::kFull);
  EXPECT_EQ(q.push(pending("free")), RequestQueue::Admit::kFull);

  q.close();
  for (auto& p : q.drain()) p.promise.set_value(InferResponse{});
}

TEST(TenantTable, ResolvesNamesAndValidatesConfig) {
  const TenantTable table({TenantClass{"paid", 0.5, 3.0},
                           TenantClass{"free", 0, 1.0}});
  EXPECT_EQ(table.resolve("paid"), 0u);
  EXPECT_EQ(table.resolve("free"), 1u);
  EXPECT_EQ(table.resolve(""), 0u);         // default class
  EXPECT_EQ(table.resolve("unknown"), 0u);  // catch-all

  const auto now = ServeClock::now();
  // Budgeted class: effective deadline = min(explicit, now + budget).
  const auto eff = table.effective_deadline(0, now, ServeTimePoint::max());
  EXPECT_LT(eff, ServeTimePoint::max());
  const auto tight = now + std::chrono::milliseconds(1);
  EXPECT_EQ(table.effective_deadline(0, now, tight), tight);
  // Unbudgeted class: the explicit deadline is the only deadline.
  EXPECT_EQ(table.effective_deadline(1, now, ServeTimePoint::max()),
            ServeTimePoint::max());

  EXPECT_THROW(TenantTable({TenantClass{"a", 0, 0.0}}), Error);
  EXPECT_THROW(TenantTable({TenantClass{"a", 0, 1.0},
                            TenantClass{"a", 0, 1.0}}),
               Error);
  EXPECT_THROW(TenantTable({TenantClass{"a", 0, 1.0},
                            TenantClass{"", 0, 1.0}}),
               Error);
}

TEST(Serve, TenantClassesGetPerClassStatsAndQuotaStatus) {
  auto models = tiny_models();
  ServerOptions opts = tiny_options();
  opts.max_queue = 8;
  opts.admission_congestion = 0.5;
  opts.classes = {TenantClass{"paid", 0, 3.0}, TenantClass{"free", 0, 1.0}};
  InferenceServer server(models, opts);

  // Not started: nothing drains, so admission outcomes are deterministic.
  const Tensor4<float> input = make_request_input(models[0], 7);
  std::vector<std::future<InferResponse>> free_futs;
  for (int i = 0; i < 5; ++i) {
    InferRequest r{models[0].name, input};
    r.tenant = "free";
    free_futs.push_back(server.submit(std::move(r)));
  }
  // Share of 2 but work-conserving up to the congestion threshold of 4;
  // the fifth free submit is the first over-quota one.
  EXPECT_EQ(free_futs[4].get().status, ServeStatus::kQuotaExceeded);
  std::vector<std::future<InferResponse>> paid_futs;
  for (int i = 0; i < 4; ++i) {
    InferRequest r{models[0].name, input};
    r.tenant = "paid";
    paid_futs.push_back(server.submit(std::move(r)));
  }

  server.start();  // drains the 4 free + 4 paid queued above
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(free_futs[i].get().status, ServeStatus::kOk);
    EXPECT_EQ(paid_futs[i].get().status, ServeStatus::kOk);
  }
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.quota_rejected, 1u);
  ASSERT_TRUE(s.classes.count("paid"));
  ASSERT_TRUE(s.classes.count("free"));
  EXPECT_EQ(s.classes.at("paid").completed, 4u);
  EXPECT_EQ(s.classes.at("paid").quota_rejected, 0u);
  EXPECT_EQ(s.classes.at("free").completed, 4u);
  EXPECT_EQ(s.classes.at("free").quota_rejected, 1u);
  EXPECT_GT(s.classes.at("paid").latency_p99, 0.0);
  server.stop();
}

TEST(Serve, ClassLatencyBudgetExpiresUnservedRequests) {
  auto models = tiny_models();
  ServerOptions opts = tiny_options();
  // A 1ms class budget on a not-yet-started server: the queued request's
  // effective deadline passes long before start() could serve it.
  opts.classes = {TenantClass{"default", 0, 1.0},
                  TenantClass{"impatient", 0.001, 1.0}};
  InferenceServer server(models, opts);
  const Tensor4<float> input = make_request_input(models[0], 9);

  InferRequest tight{models[0].name, input};
  tight.tenant = "impatient";
  auto f_tight = server.submit(std::move(tight));
  auto f_ok = server.submit({models[0].name, input});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  server.start();
  EXPECT_EQ(f_tight.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(f_ok.get().status, ServeStatus::kOk);
  const StatsSnapshot s = server.stats();
  EXPECT_EQ(s.expired, 1u);
  ASSERT_TRUE(s.classes.count("impatient"));
  EXPECT_EQ(s.classes.at("impatient").expired, 1u);
  server.stop();
}

// --------------------------------------------------- lifecycle guards ----

TEST(Serve, LifecycleMisuseFailsLoudly) {
  auto models = tiny_models();
  InferenceServer server(models, tiny_options());
  server.start();
  EXPECT_THROW(server.start(), Error);  // double start
  server.stop();
  EXPECT_THROW(server.start(), Error);  // restart after stop

  // Construction-time model validation: malformed models must fail the
  // constructor, not crash warm() or a batch later.
  ServedModel no_layers;
  no_layers.name = "empty";
  EXPECT_THROW(InferenceServer({no_layers}, tiny_options()), Error);

  ServedModel mismatched = tiny_models()[0];
  mismatched.weights.pop_back();
  EXPECT_THROW(InferenceServer({mismatched}, tiny_options()), Error);

  ServedModel unnamed = tiny_models()[0];
  unnamed.name.clear();
  EXPECT_THROW(InferenceServer({unnamed}, tiny_options()), Error);
}

// ------------------------------------- expiry/close interleaving stress ----

TEST(RequestQueue, ExpiryCloseInterleavingStressCompletesEveryRequestOnce) {
  // Many producers push a mix of already-expired, soon-expiring, and
  // immortal requests while a consumer collects and a sweeper polls
  // wait_front; close() lands mid-stream. Every future must resolve exactly
  // once (a double completion would throw std::future_error inside the
  // queue) and the depth watermark must never exceed capacity.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  constexpr std::size_t kCapacity = 64;
  RequestQueue q(kCapacity);
  std::atomic<std::size_t> expired_reported{0};
  q.set_on_expired([&](std::size_t, std::size_t n) { expired_reported += n; });

  std::vector<std::future<InferResponse>> futs(
      static_cast<std::size_t>(kProducers * kPerProducer));
  std::atomic<std::size_t> accepted{0};
  std::atomic<bool> consumer_stop{false};

  std::thread consumer([&] {
    std::string model;
    ServeTimePoint enq;
    while (!consumer_stop.load()) {
      // Collect whatever model sits at the EDF front; the short deadline
      // keeps the consumer responsive to close().
      if (!q.wait_front(&model, &enq)) return;  // closed + drained
      for (auto& p : q.collect(model, 4,
                               ServeClock::now() +
                                   std::chrono::microseconds(200))) {
        InferResponse r;
        r.status = ServeStatus::kOk;
        p.promise.set_value(std::move(r));
      }
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        PendingRequest p;
        p.request.model = "m" + std::to_string(i % 3);
        const int kind = (t + i) % 3;
        if (kind == 0)
          p.request.deadline = ServeClock::now() - std::chrono::seconds(1);
        else if (kind == 1)
          p.request.deadline =
              ServeClock::now() + std::chrono::microseconds(50 * (i % 7));
        p.enqueued = ServeClock::now();
        const std::size_t slot =
            static_cast<std::size_t>(t * kPerProducer + i);
        futs[slot] = p.promise.get_future();
        switch (q.push(std::move(p))) {
          case RequestQueue::Admit::kOk:
            ++accepted;
            break;
          case RequestQueue::Admit::kFull:
          case RequestQueue::Admit::kQuota:
          case RequestQueue::Admit::kClosed: {
            InferResponse r;
            r.status = ServeStatus::kRejected;
            p.promise.set_value(std::move(r));
            break;
          }
        }
        EXPECT_LE(q.depth(), kCapacity);
      }
    });
  }
  // Close mid-stream: producers racing the close must get kClosed (their
  // own completion), never a hang or a double-set.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : producers) t.join();
  consumer_stop = true;
  consumer.join();

  // The queue is closed; whatever remains resolves via drain (the server's
  // shutdown path).
  std::size_t drained = 0;
  for (auto& p : q.drain()) {
    InferResponse r;
    r.status = ServeStatus::kShutdown;
    p.promise.set_value(std::move(r));
    ++drained;
  }

  std::size_t ok = 0, rejected = 0, expired = 0, shutdown = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    switch (f.get().status) {
      case ServeStatus::kOk: ++ok; break;
      case ServeStatus::kRejected: ++rejected; break;
      case ServeStatus::kDeadlineExceeded: ++expired; break;
      case ServeStatus::kShutdown: ++shutdown; break;
      default: FAIL() << "unexpected status";
    }
  }
  // Conservation: every request resolved with exactly one of the four
  // outcomes, and the queue-reported expiry count matches the futures.
  EXPECT_EQ(ok + rejected + expired + shutdown, futs.size());
  EXPECT_EQ(accepted.load(), ok + expired + drained);
  EXPECT_EQ(expired_reported.load(), expired);
  EXPECT_EQ(shutdown, drained);
}

}  // namespace
}  // namespace convbound
