#include <gtest/gtest.h>

#include <map>

#include "convbound/nets/inference.hpp"
#include "convbound/nets/models.hpp"

namespace convbound {
namespace {

TEST(Models, AllShapesValidate) {
  for (const auto& [name, layers] : model_zoo()) {
    EXPECT_FALSE(layers.empty()) << name;
    for (const auto& l : layers) {
      EXPECT_NO_THROW(l.shape.validate()) << name << "/" << l.name;
    }
  }
}

TEST(Models, AlexnetMatchesTable2Rows) {
  const auto layers = alexnet();
  ASSERT_GE(layers.size(), 4u);
  // conv1: 3 -> 96, 227, 11x11, stride 4, pad 0.
  EXPECT_EQ(layers[0].shape.cin, 3);
  EXPECT_EQ(layers[0].shape.hin, 227);
  EXPECT_EQ(layers[0].shape.cout, 96);
  EXPECT_EQ(layers[0].shape.kh, 11);
  EXPECT_EQ(layers[0].shape.stride, 4);
  // conv3: 256 -> 384, 13, 3x3, stride 1, pad 1.
  EXPECT_EQ(layers[2].shape.cin, 256);
  EXPECT_EQ(layers[2].shape.hin, 13);
  EXPECT_EQ(layers[2].shape.cout, 384);
}

TEST(Models, Vgg19HasSixteenConvs) {
  EXPECT_EQ(vgg19().size(), 16u);
}

TEST(Models, ResnetBlockCounts) {
  // ResNet-18: 1 stem + 8 blocks * 2 convs + 3 downsample 1x1 = 20.
  EXPECT_EQ(resnet18().size(), 20u);
  // ResNet-34: 1 + 16*2 + 3 = 36.
  EXPECT_EQ(resnet34().size(), 36u);
}

TEST(Models, ResnetChannelsChain) {
  // Within each stage, conv2's cin equals conv1's cout.
  for (const auto& model : {resnet18(), resnet34()}) {
    std::map<std::string, ConvShape> by_name;
    for (const auto& l : model) by_name[l.name] = l.shape;
    for (const auto& [name, s] : by_name) {
      if (name.find(".conv2") == std::string::npos) continue;
      const std::string conv1 = name.substr(0, name.size() - 1) + "1";
      ASSERT_TRUE(by_name.count(conv1)) << conv1;
      EXPECT_EQ(s.cin, by_name[conv1].cout) << name;
      EXPECT_EQ(s.hin, by_name[conv1].hout()) << name;
    }
  }
}

TEST(Models, FlopsOrdering) {
  // VGG-19 is by far the heaviest model of the zoo; SqueezeNet the lightest
  // of the >= 224px ones.
  const auto zoo = model_zoo();
  std::map<std::string, std::int64_t> flops;
  for (const auto& [name, layers] : zoo) flops[name] = model_flops(layers);
  EXPECT_GT(flops["Vgg-19"], flops["ResNet-34"]);
  EXPECT_GT(flops["ResNet-34"], flops["ResNet-18"]);
  EXPECT_GT(flops["ResNet-18"], flops["SqueezeNet"]);
}

TEST(Models, BatchPropagates) {
  for (const auto& l : alexnet(8)) EXPECT_EQ(l.shape.batch, 8);
}

TEST(Inference, BaselineRunsTinyModel) {
  SimGpu gpu(MachineSpec::v100());
  // Synthetic 3-layer model to keep the test fast.
  std::vector<ConvLayer> layers;
  ConvShape s;
  s.cin = 8;
  s.hin = s.win = 16;
  s.cout = 16;
  s.kh = s.kw = 3;
  s.pad = 1;
  layers.push_back({"l1", s});
  s.cin = 16;
  layers.push_back({"l2", s});
  s.stride = 2;
  layers.push_back({"l3", s});

  const ModelReport base =
      run_model(gpu, "tiny", layers, ModelStrategy::kBaseline);
  EXPECT_EQ(base.layers.size(), 3u);
  EXPECT_GT(base.total_seconds, 0);

  const ModelReport ours =
      run_model(gpu, "tiny", layers, ModelStrategy::kOursDefault);
  EXPECT_GT(ours.total_seconds, 0);
  // Our dataflows must not lose end-to-end on this conv stack.
  EXPECT_LT(ours.total_seconds, base.total_seconds * 1.2);
}

TEST(Inference, TunedAtLeastAsGoodAsDefault) {
  SimGpu gpu(MachineSpec::v100());
  std::vector<ConvLayer> layers;
  ConvShape s;
  s.cin = 16;
  s.hin = s.win = 14;
  s.cout = 32;
  s.kh = s.kw = 3;
  s.pad = 1;
  layers.push_back({"only", s});
  const ModelReport def =
      run_model(gpu, "m", layers, ModelStrategy::kOursDefault);
  const ModelReport tuned =
      run_model(gpu, "m", layers, ModelStrategy::kOursTuned, 24);
  EXPECT_LE(tuned.total_seconds, def.total_seconds * 1.05);
}

}  // namespace
}  // namespace convbound
