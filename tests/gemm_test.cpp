#include <gtest/gtest.h>

#include "convbound/gemm/gemm.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

void fill_random(std::vector<float>& v, Rng& rng) {
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1, 1));
}

double max_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  return m;
}

struct GemmCase {
  std::int64_t m, k, n;
  GemmConfig cfg;
};

class GemmSimCorrectness : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSimCorrectness, MatchesReference) {
  const auto& p = GetParam();
  Rng rng(99);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k)),
      b(static_cast<std::size_t>(p.k * p.n)),
      c_ref(static_cast<std::size_t>(p.m * p.n)),
      c_sim(static_cast<std::size_t>(p.m * p.n));
  fill_random(a, rng);
  fill_random(b, rng);
  gemm_ref(a.data(), b.data(), c_ref.data(), p.m, p.k, p.n);

  SimGpu gpu(MachineSpec::v100());
  const auto stats =
      gemm_sim(gpu, a.data(), b.data(), c_sim.data(), p.m, p.k, p.n, p.cfg);
  EXPECT_LT(max_diff(c_ref, c_sim), 1e-3);
  EXPECT_EQ(stats.flops, static_cast<std::uint64_t>(2 * p.m * p.k * p.n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSimCorrectness,
    ::testing::Values(
        GemmCase{1, 1, 1, {}},                 // degenerate
        GemmCase{5, 7, 3, {}},                 // smaller than tiles
        GemmCase{64, 64, 64, {}},              // exact tiles
        GemmCase{65, 33, 70, {}},              // ragged edges
        GemmCase{128, 96, 60, {32, 16, 8, 64}},  // custom tiling
        GemmCase{17, 255, 19, {8, 8, 128, 32}}));

TEST(GemmSim, OutputWrittenExactlyOnce) {
  const std::int64_t m = 64, k = 256, n = 64;
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n)), c(static_cast<std::size_t>(m * n));
  fill_random(a, rng);
  fill_random(b, rng);
  SimGpu gpu(MachineSpec::v100());
  const auto stats = gemm_sim(gpu, a.data(), b.data(), c.data(), m, k, n);
  EXPECT_EQ(stats.bytes_stored, static_cast<std::uint64_t>(m * n * 4));
}

TEST(GemmSim, TileReuseReducesLoads) {
  const std::int64_t m = 128, k = 128, n = 128;
  Rng rng(2);
  std::vector<float> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n)), c(static_cast<std::size_t>(m * n));
  fill_random(a, rng);
  fill_random(b, rng);
  SimGpu gpu(MachineSpec::v100());
  GemmConfig big{64, 64, 32, 128};
  GemmConfig tiny{8, 8, 8, 64};
  const auto big_stats = gemm_sim(gpu, a.data(), b.data(), c.data(), m, k, n, big);
  const auto tiny_stats =
      gemm_sim(gpu, a.data(), b.data(), c.data(), m, k, n, tiny);
  EXPECT_LT(big_stats.bytes_loaded, tiny_stats.bytes_loaded);
}

TEST(GemmSim, RejectsBadDims) {
  SimGpu gpu(MachineSpec::v100());
  float x = 0;
  EXPECT_THROW(gemm_sim(gpu, &x, &x, &x, 0, 1, 1), Error);
}

}  // namespace
}  // namespace convbound
