// Cross-module integration: simulated executions vs the analytic theory,
// pebble game vs the simulator, tuned configs vs the optimality condition.
#include <gtest/gtest.h>

#include "convbound/convbound.hpp"

namespace convbound {
namespace {

TEST(Integration, SimulatedIoRespectsLowerBoundAcrossShapes) {
  SimGpu gpu(MachineSpec::v100());
  const double S = static_cast<double>(gpu.spec().smem_floats());
  for (std::int64_t hw : {14, 28}) {
    for (std::int64_t c : {16, 64}) {
      ConvShape s;
      s.cin = c;
      s.hin = s.win = hw;
      s.cout = c;
      s.kh = s.kw = 3;
      s.pad = 1;
      const ConvProblem p = make_problem(s, 1);
      Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
      const ConvConfig cfg = default_tiled_config(s, gpu.spec());
      const auto stats =
          direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
      const double q_elems = static_cast<double>(stats.bytes_total()) / 4.0;
      EXPECT_GE(q_elems, direct_conv_lower_bound(s, S)) << s.to_string();
    }
  }
}

TEST(Integration, DataflowIoWithinConstantFactorOfBound) {
  // The Section 5.2 design claim: with N_p processors and per-block memory
  // S/N_p, counted I/O tracks Equation (21) within a small factor.
  SimGpu gpu(MachineSpec::gtx1080ti());
  ConvShape s;
  s.cin = 128;
  s.hin = s.win = 56;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.pad = 1;
  const ConvProblem p = make_problem(s, 2);
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const ConvConfig cfg = default_tiled_config(s, gpu.spec());
  const auto stats = direct_tiled_sim(gpu, p.input, p.weights, s, cfg, out);
  const double q_elems = static_cast<double>(stats.bytes_total()) / 4.0;
  const double predicted = direct_dataflow_reads(s, cfg.x, cfg.y, cfg.z) +
                           static_cast<double>(s.output_elems());
  EXPECT_LT(q_elems / predicted, 2.0);
  EXPECT_GT(q_elems / predicted, 0.5);
}

TEST(Integration, PebbleGameConfirmsDataflowOrderQuality) {
  // Game-measured I/O of the dataflow-ordered DAG sits within a small
  // multiple of the analytic lower bound (near-optimality, Section 5).
  ConvDagShape ds;
  ds.cin = 8;
  ds.hin = ds.win = 10;
  ds.cout = 8;
  const std::size_t S = 512;
  // R = 9, pick x*y = R*z: (6,6,4).
  const auto game =
      play_pebble_game(direct_conv_dag(ds, TileSpec{6, 6, 4}), S);

  ConvShape s;
  s.cin = ds.cin;
  s.hin = ds.hin;
  s.win = ds.win;
  s.cout = ds.cout;
  // At this scale the exact proof form is vacuous (|V| < T(2S)), so gauge
  // near-optimality against the leading term.
  const double bound =
      direct_conv_lower_bound_leading(s, static_cast<double>(S));
  EXPECT_GE(static_cast<double>(game.total()), bound);
  EXPECT_LT(static_cast<double>(game.total()), 64.0 * bound);
}

TEST(Integration, TunedConfigNearOptimalityCondition) {
  SimGpu gpu(MachineSpec::v100());
  ConvShape s;
  s.cin = 64;
  s.hin = s.win = 28;
  s.cout = 64;
  s.kh = s.kw = 3;
  s.pad = 1;
  AutotuneOptions opts;
  opts.budget = 40;
  const auto out = autotune_conv(gpu, s, opts);
  // The pruned domain forces configurations near x*y = R*z; the winner must
  // satisfy the domain's band.
  EXPECT_TRUE(out.domain.contains(out.result.best));
  const double sb_elems =
      static_cast<double>(out.result.best.smem_budget) / 4.0;
  EXPECT_LE(static_cast<double>(out.result.best.z),
            std::sqrt(sb_elems / s.reuse()) + 1);
}

TEST(Integration, SpeedupShapeDirectVsCudnn) {
  // Fig. 9's qualitative claim on one point: for a mid-size layer our tiled
  // dataflow beats the cuDNN-like baseline on simulated time.
  SimGpu gpu(MachineSpec::gtx1080ti());
  ConvShape s;
  s.cin = 64;
  s.hin = s.win = 56;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.pad = 1;
  const ConvProblem p = make_problem(s, 9);
  const ConvConfig cfg = default_tiled_config(s, gpu.spec());
  const ConvResult ours =
      run_conv(gpu, ConvAlgorithm::kDirectTiled, p.input, p.weights, s, cfg);
  const ConvResult base =
      run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights, s);
  EXPECT_LT(ours.stats.sim_time, base.stats.sim_time);
  EXPECT_TRUE(allclose(ours.output, base.output, 1e-3, 1e-3));
}

TEST(Integration, WinogradTradesIoForFlops) {
  // Winograd's DAG moves more values per output (transform trees), so its
  // I/O bound sits *above* the direct one — but it needs far fewer
  // multiplications. Both sides of that trade must show up in simulation.
  ConvShape s;
  s.cin = 32;
  s.hin = s.win = 28;
  s.cout = 32;
  s.kh = s.kw = 3;
  s.pad = 1;
  const double S = 24 * 1024;
  EXPECT_GT(winograd_lower_bound_leading(s, 2, S),
            direct_conv_lower_bound_leading(s, S));

  SimGpu gpu(MachineSpec::v100());
  const ConvProblem p = make_problem(s, 4);
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  const auto direct = direct_tiled_sim(gpu, p.input, p.weights, s,
                                       default_tiled_config(s, gpu.spec()),
                                       out);
  const auto wino = winograd_fused_sim(
      gpu, p.input, p.weights, s, 4,
      default_winograd_config(s, 4, gpu.spec()), out);
  EXPECT_LT(wino.flops, direct.flops);
}

TEST(Integration, StrideWeakensDataflowAdvantage) {
  // Fig. 9's third observation: benefits decrease as stride grows, because
  // R = k^2/mu^2 shrinks. Compare predicted read amplification ratios.
  ConvShape s;
  s.cin = 128;
  s.hin = s.win = 57;
  s.cout = 128;
  s.kh = s.kw = 3;
  const double S = 12 * 1024;
  s.stride = 1;
  const double gain1 =
      direct_conv_lower_bound_leading(s, S) / static_cast<double>(s.flops());
  s.stride = 2;
  const double gain2 =
      direct_conv_lower_bound_leading(s, S) / static_cast<double>(s.flops());
  // Normalised I/O per flop grows with stride (less reuse available).
  EXPECT_GT(gain2, gain1);
}

}  // namespace
}  // namespace convbound
