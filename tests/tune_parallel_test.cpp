// The batched measurement engine's contract: candidate-level parallelism
// must never change what the tuner searches. Same seed => bit-identical
// TuneResult.history whether measurements run serially (ConvMeasurer) or
// through BatchMeasurer with any worker count.
#include <gtest/gtest.h>

#include <memory>

#include "convbound/tune/batch_measure.hpp"
#include "convbound/tune/engine.hpp"
#include "convbound/tune/tuners.hpp"

namespace convbound {
namespace {

ConvShape small_shape() {
  ConvShape s;
  s.cin = 16;
  s.hin = s.win = 16;
  s.cout = 16;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  return s;
}

// Bit-exact trace comparison: configs, per-trial seconds and incumbents.
void expect_identical(const TuneResult& a, const TuneResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.history.size(), b.history.size()) << what;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_TRUE(a.history[i].config == b.history[i].config)
        << what << " trial " << i;
    EXPECT_EQ(a.history[i].seconds, b.history[i].seconds)
        << what << " trial " << i;
    EXPECT_EQ(a.history[i].best_seconds, b.history[i].best_seconds)
        << what << " trial " << i;
  }
  EXPECT_EQ(a.best_seconds, b.best_seconds) << what;
  EXPECT_TRUE(a.best == b.best) << what;
}

std::unique_ptr<Tuner> make_tuner(const std::string& kind,
                                  std::uint64_t seed) {
  if (kind == "random") return std::make_unique<RandomTuner>(seed);
  if (kind == "sa") return std::make_unique<SimulatedAnnealingTuner>(seed);
  if (kind == "ga") return std::make_unique<GeneticTuner>(seed);
  return std::make_unique<AteTuner>(seed);
}

class ParallelDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelDeterminism, HistoryIndependentOfWorkerCount) {
  const int kBudget = 32;
  const std::uint64_t kSeed = 11;
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());

  // Reference: the serial measurement path.
  ConvMeasurer serial(gpu, domain, kSeed);
  const TuneResult ref = make_tuner(GetParam(), kSeed)->run(serial, kBudget);
  ASSERT_EQ(ref.history.size(), static_cast<std::size_t>(kBudget));

  for (int workers : {1, 2, 8}) {
    BatchMeasurer batched(gpu.spec(), domain, kSeed, workers);
    EXPECT_EQ(batched.workers(), workers);
    const TuneResult res =
        make_tuner(GetParam(), kSeed)->run(batched, kBudget);
    expect_identical(ref, res,
                     GetParam() + " @" + std::to_string(workers) + "w");
  }
}

INSTANTIATE_TEST_SUITE_P(AllTuners, ParallelDeterminism,
                         ::testing::Values("random", "sa", "ga", "ate"));

TEST(BatchMeasurer, MatchesSerialMeasurementsExactly) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  ConvMeasurer serial(gpu, domain, 5);
  BatchMeasurer batched(gpu.spec(), domain, 5, 4);

  Rng rng(9);
  std::vector<ConvConfig> cfgs;
  for (int i = 0; i < 12; ++i) cfgs.push_back(domain.sample(rng));
  const auto ms = batched.measure_batch(cfgs);
  ASSERT_EQ(ms.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const Measurement ref = serial.measure(cfgs[i]);
    EXPECT_EQ(ms[i].valid, ref.valid) << i;
    EXPECT_EQ(ms[i].seconds, ref.seconds) << i;
    EXPECT_EQ(ms[i].stats.bytes_loaded, ref.stats.bytes_loaded) << i;
    EXPECT_EQ(ms[i].stats.bytes_stored, ref.stats.bytes_stored) << i;
    EXPECT_EQ(ms[i].stats.flops, ref.stats.flops) << i;
  }
  EXPECT_EQ(batched.trials(), cfgs.size());
}

TEST(BatchMeasurer, InvalidConfigsComeBackInvalidInBatch) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  BatchMeasurer batched(gpu.spec(), domain, 5, 2);

  Rng rng(3);
  ConvConfig bad;
  bad.x = bad.y = bad.z = 16;
  bad.smem_budget = 512;  // way too small
  const std::vector<ConvConfig> cfgs = {domain.sample(rng), bad,
                                        domain.sample(rng)};
  const auto ms = batched.measure_batch(cfgs);
  EXPECT_TRUE(ms[0].valid);
  EXPECT_FALSE(ms[1].valid);
  EXPECT_TRUE(std::isinf(ms[1].seconds));
  EXPECT_TRUE(ms[2].valid);
}

TEST(BatchMeasurer, EmptyBatchIsNoop) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  BatchMeasurer batched(gpu.spec(), domain);
  EXPECT_TRUE(batched.measure_batch({}).empty());
  EXPECT_EQ(batched.trials(), 0u);
}

TEST(SimGpuExecMode, SerialAndStripedCountIdentically) {
  SimGpu striped(MachineSpec::test_machine());
  SimGpu serial(MachineSpec::test_machine(), nullptr, ExecMode::kSerial);
  EXPECT_EQ(serial.exec_mode(), ExecMode::kSerial);

  LaunchConfig cfg;
  cfg.num_blocks = 37;
  cfg.threads_per_block = 64;
  cfg.smem_bytes_per_block = 1024;
  auto kernel = [](BlockContext& ctx) {
    auto span = ctx.smem().alloc<float>(16);
    float src[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    ctx.load(src, span.data(), 16);
    ctx.add_flops(2 * 16);
    float out[16];
    ctx.store(out, span.data(), 16);
  };
  const LaunchStats a = striped.launch(cfg, kernel);
  const LaunchStats b = serial.launch(cfg, kernel);
  EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
  EXPECT_EQ(a.bytes_stored, b.bytes_stored);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.sim_time, b.sim_time);
}

TEST(Engine, BatchedAutotuneDeterministicAcrossWorkerCounts) {
  SimGpu gpu(MachineSpec::v100());
  AutotuneOptions opts;
  opts.budget = 24;
  opts.seed = 4;

  opts.workers = 1;
  const AutotuneOutcome one = autotune_conv(gpu, small_shape(), opts);
  opts.workers = 8;
  const AutotuneOutcome eight = autotune_conv(gpu, small_shape(), opts);
  expect_identical(one.result, eight.result, "engine");
  EXPECT_EQ(one.best_gflops, eight.best_gflops);
  EXPECT_GT(one.best_gflops, 0);
}

TEST(ConvConfigHash, ConsistentWithEquality) {
  SimGpu gpu(MachineSpec::v100());
  const auto domain = SearchDomain::build(small_shape(), gpu.spec());
  Rng rng(13);
  const std::hash<ConvConfig> h;
  for (int i = 0; i < 50; ++i) {
    const ConvConfig a = domain.sample(rng);
    ConvConfig b = a;
    EXPECT_EQ(h(a), h(b));
    b.nxt = b.nxt == 1 ? 2 : 1;
    if (!(a == b)) {
      EXPECT_NE(h(a), h(b));
    }
  }
}

}  // namespace
}  // namespace convbound
