#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "convbound/tune/cache.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

TuneCache::Entry entry(std::int64_t x, double gflops) {
  TuneCache::Entry e;
  e.config.x = x;
  e.config.y = 7;
  e.config.z = 3;
  e.config.nxt = 2;
  e.config.nyt = 7;
  e.config.nzt = 1;
  e.config.layout = Layout::kNHWC;
  e.config.smem_budget = 24576;
  e.gflops = gflops;
  return e;
}

TEST(TuneCache, PutGetRoundTrip) {
  TuneCache cache;
  cache.put("k1", entry(4, 100));
  ASSERT_TRUE(cache.get("k1").has_value());
  EXPECT_EQ(cache.get("k1")->config.x, 4);
  EXPECT_FALSE(cache.get("missing").has_value());
}

TEST(TuneCache, BetterEntryWins) {
  TuneCache cache;
  cache.put("k", entry(4, 100));
  cache.put("k", entry(8, 50));  // worse: ignored
  EXPECT_EQ(cache.get("k")->config.x, 4);
  cache.put("k", entry(8, 200));  // better: replaces
  EXPECT_EQ(cache.get("k")->config.x, 8);
  cache.put("k", entry(2, 1), /*force=*/true);
  EXPECT_EQ(cache.get("k")->config.x, 2);
}

TEST(TuneCache, SerializeDeserializeIdentity) {
  TuneCache cache;
  cache.put("machine;direct;conv[b=1]", entry(4, 123.45));
  cache.put("machine;winograd2;conv[b=2]", entry(6, 678.9));
  const TuneCache back = TuneCache::deserialize(cache.serialize());
  EXPECT_EQ(back.size(), 2u);
  const auto e = back.get("machine;direct;conv[b=1]");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->config.x, 4);
  EXPECT_EQ(e->config.layout, Layout::kNHWC);
  EXPECT_EQ(e->config.smem_budget, 24576);
  EXPECT_NEAR(e->gflops, 123.45, 1e-9);
}

TEST(TuneCache, RejectsMalformedInput) {
  EXPECT_THROW(TuneCache::deserialize("no separators here"), Error);
  EXPECT_THROW(TuneCache::deserialize("key|1 2 3|x only one sep... |"),
               Error);
  TuneCache cache;
  EXPECT_THROW(cache.put("bad|key", entry(1, 1)), Error);
}

TEST(TuneCache, FileRoundTrip) {
  const std::string path = "/tmp/convbound_cache_test.txt";
  TuneCache cache;
  cache.put("a", entry(4, 10));
  cache.put("b", entry(8, 20));
  cache.save(path);
  const TuneCache loaded = TuneCache::load(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.get("b")->config.x, 8);
  std::remove(path.c_str());
}

TEST(TuneCache, MergeKeepsBest) {
  TuneCache a, b;
  a.put("k", entry(4, 100));
  a.put("only_a", entry(2, 1));
  b.put("k", entry(8, 200));
  b.put("only_b", entry(6, 3));
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.get("k")->config.x, 8);
}

// Property test over randomized (spec, shape, config) tasks: every entry
// that survives the better-GFlops-wins insert rule must round-trip through
// serialize/deserialize — including the rfind('|') parsing path, which has
// to split on the *last* separator because keys are free-form text — and
// merge() must agree with a reference map applying the same rule.
TEST(TuneCache, RandomizedSerializeMergeRoundTrip) {
  Rng rng(0xCAFE);
  const std::vector<MachineSpec> specs = {
      MachineSpec::v100(), MachineSpec::titan_x(),
      MachineSpec::bandwidth_optimized(), MachineSpec::compute_optimized()};
  const auto random_entry = [&] {
    TuneCache::Entry e;
    e.config.x = rng.range(1, 32);
    e.config.y = rng.range(1, 32);
    e.config.z = rng.range(1, 16);
    e.config.nxt = rng.range(1, 8);
    e.config.nyt = rng.range(1, 8);
    e.config.nzt = rng.range(1, 4);
    e.config.layout = static_cast<Layout>(rng.range(0, 2));
    e.config.smem_budget = 1024 * rng.range(1, 96);
    e.gflops = 1.0 + 5000.0 * rng.uniform();
    return e;
  };

  TuneCache a, b;
  std::map<std::string, TuneCache::Entry> want;  // reference: best wins
  for (int i = 0; i < 300; ++i) {
    ConvShape s;
    s.batch = 1 << rng.range(0, 4);
    s.kh = s.kw = 2 * rng.range(0, 2) + 1;  // 1, 3, 5
    s.hin = s.win = s.kh + rng.range(2, 20);
    s.cin = s.cout = 2 * rng.range(1, 16);
    s.stride = rng.range(1, 2);
    s.pad = s.kh / 2;
    s.validate();
    const std::string key = TuneCache::make_key(
        specs[static_cast<std::size_t>(rng.range(
            0, static_cast<std::int64_t>(specs.size()) - 1))],
        s, rng.range(0, 1) == 1, 2 * rng.range(1, 3));

    // Same key can recur with a different config: the best GFlops must win
    // in whichever of the two caches it lands in, and again at merge time.
    const TuneCache::Entry e = random_entry();
    (rng.range(0, 1) == 0 ? a : b).put(key, e);
    const auto it = want.find(key);
    if (it == want.end() || e.gflops > it->second.gflops) want[key] = e;
  }

  // Round trip each cache independently (text form is line-based).
  for (const TuneCache* c : {&a, &b}) {
    const TuneCache back = TuneCache::deserialize(c->serialize());
    EXPECT_EQ(back.size(), c->size());
  }

  // Merge, then round-trip the merged cache and check every surviving
  // entry against the reference.
  a.merge(b);
  const TuneCache back = TuneCache::deserialize(a.serialize());
  ASSERT_EQ(back.size(), want.size());
  for (const auto& [key, e] : want) {
    const auto got = back.get(key);
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(got->config.x, e.config.x) << key;
    EXPECT_EQ(got->config.y, e.config.y) << key;
    EXPECT_EQ(got->config.z, e.config.z) << key;
    EXPECT_EQ(got->config.nxt, e.config.nxt) << key;
    EXPECT_EQ(got->config.nyt, e.config.nyt) << key;
    EXPECT_EQ(got->config.nzt, e.config.nzt) << key;
    EXPECT_EQ(got->config.layout, e.config.layout) << key;
    EXPECT_EQ(got->config.smem_budget, e.config.smem_budget) << key;
    // gflops crosses the text form at default stream precision; the value
    // survives to ~6 significant digits, the ordering decisions above were
    // all made pre-serialization on exact doubles.
    EXPECT_NEAR(got->gflops, e.gflops, 1e-4 * e.gflops) << key;
  }
}

TEST(TuneCache, KeyEncodesTask) {
  const MachineSpec spec = MachineSpec::v100();
  ConvShape s;
  s.cin = 3;
  s.hin = s.win = 8;
  s.kh = s.kw = 3;
  const std::string direct = TuneCache::make_key(spec, s, false, 2);
  const std::string wino = TuneCache::make_key(spec, s, true, 2);
  const std::string wino4 = TuneCache::make_key(spec, s, true, 4);
  EXPECT_NE(direct, wino);
  EXPECT_NE(wino, wino4);
  EXPECT_NE(direct.find("V100"), std::string::npos);
}

}  // namespace
}  // namespace convbound
