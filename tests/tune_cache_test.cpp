#include <gtest/gtest.h>

#include <cstdio>

#include "convbound/tune/cache.hpp"

namespace convbound {
namespace {

TuneCache::Entry entry(std::int64_t x, double gflops) {
  TuneCache::Entry e;
  e.config.x = x;
  e.config.y = 7;
  e.config.z = 3;
  e.config.nxt = 2;
  e.config.nyt = 7;
  e.config.nzt = 1;
  e.config.layout = Layout::kNHWC;
  e.config.smem_budget = 24576;
  e.gflops = gflops;
  return e;
}

TEST(TuneCache, PutGetRoundTrip) {
  TuneCache cache;
  cache.put("k1", entry(4, 100));
  ASSERT_TRUE(cache.get("k1").has_value());
  EXPECT_EQ(cache.get("k1")->config.x, 4);
  EXPECT_FALSE(cache.get("missing").has_value());
}

TEST(TuneCache, BetterEntryWins) {
  TuneCache cache;
  cache.put("k", entry(4, 100));
  cache.put("k", entry(8, 50));  // worse: ignored
  EXPECT_EQ(cache.get("k")->config.x, 4);
  cache.put("k", entry(8, 200));  // better: replaces
  EXPECT_EQ(cache.get("k")->config.x, 8);
  cache.put("k", entry(2, 1), /*force=*/true);
  EXPECT_EQ(cache.get("k")->config.x, 2);
}

TEST(TuneCache, SerializeDeserializeIdentity) {
  TuneCache cache;
  cache.put("machine;direct;conv[b=1]", entry(4, 123.45));
  cache.put("machine;winograd2;conv[b=2]", entry(6, 678.9));
  const TuneCache back = TuneCache::deserialize(cache.serialize());
  EXPECT_EQ(back.size(), 2u);
  const auto e = back.get("machine;direct;conv[b=1]");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->config.x, 4);
  EXPECT_EQ(e->config.layout, Layout::kNHWC);
  EXPECT_EQ(e->config.smem_budget, 24576);
  EXPECT_NEAR(e->gflops, 123.45, 1e-9);
}

TEST(TuneCache, RejectsMalformedInput) {
  EXPECT_THROW(TuneCache::deserialize("no separators here"), Error);
  EXPECT_THROW(TuneCache::deserialize("key|1 2 3|x only one sep... |"),
               Error);
  TuneCache cache;
  EXPECT_THROW(cache.put("bad|key", entry(1, 1)), Error);
}

TEST(TuneCache, FileRoundTrip) {
  const std::string path = "/tmp/convbound_cache_test.txt";
  TuneCache cache;
  cache.put("a", entry(4, 10));
  cache.put("b", entry(8, 20));
  cache.save(path);
  const TuneCache loaded = TuneCache::load(path);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.get("b")->config.x, 8);
  std::remove(path.c_str());
}

TEST(TuneCache, MergeKeepsBest) {
  TuneCache a, b;
  a.put("k", entry(4, 100));
  a.put("only_a", entry(2, 1));
  b.put("k", entry(8, 200));
  b.put("only_b", entry(6, 3));
  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.get("k")->config.x, 8);
}

TEST(TuneCache, KeyEncodesTask) {
  const MachineSpec spec = MachineSpec::v100();
  ConvShape s;
  s.cin = 3;
  s.hin = s.win = 8;
  s.kh = s.kw = 3;
  const std::string direct = TuneCache::make_key(spec, s, false, 2);
  const std::string wino = TuneCache::make_key(spec, s, true, 2);
  const std::string wino4 = TuneCache::make_key(spec, s, true, 4);
  EXPECT_NE(direct, wino);
  EXPECT_NE(wino, wino4);
  EXPECT_NE(direct.find("V100"), std::string::npos);
}

}  // namespace
}  // namespace convbound
