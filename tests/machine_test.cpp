#include <gtest/gtest.h>

#include "convbound/machine/machine_spec.hpp"
#include "convbound/machine/sim_gpu.hpp"

namespace convbound {
namespace {

TEST(SharedMemory, AllocatesWithinCapacity) {
  SharedMemory smem(1024);
  auto a = smem.alloc<float>(128);  // 512 B
  EXPECT_EQ(a.size(), 128u);
  auto b = smem.alloc<float>(128);  // another 512 B
  EXPECT_EQ(b.size(), 128u);
  EXPECT_EQ(smem.used(), 1024u);
}

TEST(SharedMemory, OverflowThrows) {
  SharedMemory smem(1024);
  smem.alloc<float>(200);
  EXPECT_THROW(smem.alloc<float>(100), Error);
}

TEST(SharedMemory, ResetReclaims) {
  SharedMemory smem(64);
  smem.alloc<float>(16);
  smem.reset();
  EXPECT_NO_THROW(smem.alloc<float>(16));
}

TEST(MachineSpec, PresetsAreDistinctAndSane) {
  for (const auto& spec :
       {MachineSpec::gtx1080ti(), MachineSpec::titan_x(), MachineSpec::v100(),
        MachineSpec::gfx906()}) {
    EXPECT_GT(spec.num_sms, 0);
    EXPECT_GT(spec.global_bw, 0);
    EXPECT_GT(spec.peak_flops, 0);
    EXPECT_GT(spec.smem_floats(), 0);
  }
  EXPECT_GT(MachineSpec::v100().peak_flops,
            MachineSpec::titan_x().peak_flops);
}

TEST(ModelTime, MemoryBoundScalesWithBytes) {
  const auto spec = MachineSpec::v100();
  LaunchConfig cfg;
  cfg.num_blocks = 1000;
  cfg.threads_per_block = 256;
  const double t1 = model_time(spec, cfg, 1'000'000'000, 1000);
  const double t2 = model_time(spec, cfg, 2'000'000'000, 1000);
  EXPECT_GT(t2, t1 * 1.8);
}

TEST(ModelTime, ComputeBoundScalesWithFlops) {
  const auto spec = MachineSpec::v100();
  LaunchConfig cfg;
  cfg.num_blocks = 1000;
  cfg.threads_per_block = 256;
  const double t1 = model_time(spec, cfg, 1000, 4'000'000'000'000ull);
  const double t2 = model_time(spec, cfg, 1000, 8'000'000'000'000ull);
  EXPECT_GT(t2, t1 * 1.8);
}

TEST(ModelTime, MoreBlocksHideWaveQuantisation) {
  const auto spec = MachineSpec::v100();
  LaunchConfig few, many;
  few.num_blocks = 4;        // far fewer than 80 SMs
  many.num_blocks = 8000;
  few.threads_per_block = many.threads_per_block = 256;
  // Same total work; the under-parallel launch must be slower.
  const double t_few = model_time(spec, few, 1'000'000'000, 1'000'000'000);
  const double t_many = model_time(spec, many, 1'000'000'000, 1'000'000'000);
  EXPECT_GT(t_few, t_many);
}

TEST(ModelTime, HugeSmemBlocksHurtOccupancy) {
  const auto spec = MachineSpec::v100();
  LaunchConfig small, big;
  small.num_blocks = big.num_blocks = 10000;
  small.threads_per_block = big.threads_per_block = 256;
  small.smem_bytes_per_block = spec.shared_mem_per_sm / 8;
  big.smem_bytes_per_block = spec.shared_mem_per_sm;  // one block per SM
  const double t_small = model_time(spec, small, 1'000'000, 1'000'000'000'000);
  const double t_big = model_time(spec, big, 1'000'000, 1'000'000'000'000);
  EXPECT_LE(t_small, t_big);
}

TEST(ModelTime, RejectsOversizedBlocks) {
  const auto spec = MachineSpec::v100();
  LaunchConfig cfg;
  cfg.num_blocks = 1;
  cfg.smem_bytes_per_block = spec.shared_mem_per_sm + 1;
  EXPECT_THROW(model_time(spec, cfg, 1, 1), Error);
  cfg.smem_bytes_per_block = 0;
  cfg.threads_per_block = spec.max_threads_per_block + 1;
  EXPECT_THROW(model_time(spec, cfg, 1, 1), Error);
}

TEST(SimGpu, CountsLoadsAndStores) {
  SimGpu gpu(MachineSpec::test_machine());
  std::vector<float> global(256, 1.0f);
  std::vector<float> out(256, 0.0f);
  LaunchConfig cfg;
  cfg.num_blocks = 4;
  cfg.threads_per_block = 32;
  cfg.smem_bytes_per_block = 64 * sizeof(float);
  const auto stats = gpu.launch(cfg, [&](BlockContext& ctx) {
    auto buf = ctx.smem().alloc<float>(64);
    ctx.load(global.data() + ctx.block_id() * 64, buf.data(), 64);
    for (auto& v : buf) v *= 2.0f;
    ctx.add_flops(64);
    ctx.store(out.data() + ctx.block_id() * 64, buf.data(), 64);
  });
  EXPECT_EQ(stats.bytes_loaded, 4u * 64 * sizeof(float));
  EXPECT_EQ(stats.bytes_stored, 4u * 64 * sizeof(float));
  EXPECT_EQ(stats.flops, 256u);
  EXPECT_GT(stats.sim_time, 0);
  for (float v : out) EXPECT_EQ(v, 2.0f);
}

TEST(SimGpu, EnforcesBlockSharedMemory) {
  SimGpu gpu(MachineSpec::test_machine());
  LaunchConfig cfg;
  cfg.num_blocks = 1;
  cfg.smem_bytes_per_block = 128;
  EXPECT_THROW(gpu.launch(cfg,
                          [&](BlockContext& ctx) {
                            ctx.smem().alloc<float>(64);  // 256 B > 128 B
                          }),
               Error);
}

TEST(SimGpu, GatherCostsMoreThanContiguous) {
  SimGpu gpu(MachineSpec::test_machine());
  std::vector<float> global(1024, 1.0f);
  LaunchConfig cfg;
  cfg.num_blocks = 1;
  cfg.smem_bytes_per_block = 512;
  float sink[64];
  const auto contiguous = gpu.launch(cfg, [&](BlockContext& ctx) {
    ctx.load_gather(global.data(), 1, sink, 64);
  });
  const auto strided = gpu.launch(cfg, [&](BlockContext& ctx) {
    ctx.load_gather(global.data(), 16, sink, 64);
  });
  EXPECT_EQ(contiguous.bytes_loaded, 64 * sizeof(float));
  EXPECT_EQ(strided.bytes_loaded, 64 * BlockContext::kTransactionBytes);
}

TEST(SimGpu, StatsAccumulate) {
  LaunchStats a, b;
  a.bytes_loaded = 10;
  a.flops = 5;
  a.sim_time = 1.0;
  b.bytes_loaded = 20;
  b.flops = 15;
  b.sim_time = 2.0;
  a += b;
  EXPECT_EQ(a.bytes_loaded, 30u);
  EXPECT_EQ(a.flops, 20u);
  EXPECT_DOUBLE_EQ(a.sim_time, 3.0);
}

}  // namespace
}  // namespace convbound
