#include <gtest/gtest.h>

#include "convbound/convbound.hpp"

namespace convbound {
namespace {

TEST(Api, Conv2dMatchesReference) {
  ConvShape s;
  s.cin = 8;
  s.hin = s.win = 12;
  s.cout = 8;
  s.kh = s.kw = 3;
  s.pad = 1;
  const ConvProblem p = make_problem(s, 2024);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::v100());
  const ConvResult r = conv2d(gpu, p.input, p.weights, s);
  EXPECT_TRUE(allclose(expect, r.output, 1e-3, 1e-3));
  EXPECT_GT(r.stats.sim_time, 0);
}

TEST(Api, Conv2dHandlesStridedShapes) {
  ConvShape s;
  s.cin = 4;
  s.hin = s.win = 15;
  s.cout = 8;
  s.kh = s.kw = 5;
  s.stride = 2;
  const ConvProblem p = make_problem(s, 11);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::gtx1080ti());
  const ConvResult r = conv2d(gpu, p.input, p.weights, s);
  EXPECT_TRUE(allclose(expect, r.output, 1e-3, 1e-3));
}

TEST(Api, LowerBoundPositiveAndMonotone) {
  ConvShape s;
  s.cin = 128;
  s.hin = s.win = 28;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.pad = 1;
  const double q1 = conv_lower_bound(s, 4096);
  const double q2 = conv_lower_bound(s, 16384);
  EXPECT_GT(q1, 0);
  EXPECT_GT(q1, q2);
}

TEST(Api, LowerBoundPicksWinogradWhenApplicable) {
  ConvShape s;
  s.cin = 128;
  s.hin = s.win = 28;
  s.cout = 128;
  s.kh = s.kw = 3;
  s.pad = 1;
  const double both = conv_lower_bound(s, 4096);
  EXPECT_LE(both, direct_conv_lower_bound(s, 4096));
  s.stride = 2;  // winograd not applicable
  EXPECT_DOUBLE_EQ(conv_lower_bound(s, 4096),
                   direct_conv_lower_bound(s, 4096));
}

}  // namespace
}  // namespace convbound
