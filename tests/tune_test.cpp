#include <gtest/gtest.h>

#include <numeric>

#include "convbound/ml/gbt.hpp"
#include "convbound/tune/domain.hpp"
#include "convbound/tune/engine.hpp"
#include "convbound/tune/features.hpp"
#include "convbound/tune/measure.hpp"
#include "convbound/tune/tuners.hpp"

namespace convbound {
namespace {

ConvShape small_shape() {
  ConvShape s;
  s.cin = 16;
  s.hin = s.win = 18;  // hout = wout = 16 with 3x3 pad 1... set pad below
  s.cout = 16;
  s.kh = s.kw = 3;
  s.stride = 1;
  s.pad = 1;
  s.hin = s.win = 16;
  return s;
}

TEST(Domain, BuildsNonEmpty) {
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100());
  EXPECT_GT(d.size(), 0u);
  EXPECT_FALSE(d.xs().empty());
  EXPECT_FALSE(d.smem_choices().empty());
}

TEST(Domain, PrunedIsSubsetOfUnpruned) {
  const ConvShape s = small_shape();
  DomainOptions pruned, full;
  pruned.prune_with_optimality = true;
  full.prune_with_optimality = false;
  const auto dp = SearchDomain::build(s, MachineSpec::v100(), pruned);
  const auto df = SearchDomain::build(s, MachineSpec::v100(), full);
  EXPECT_LT(dp.size(), df.size());
  // Every pruned sample must also satisfy the unpruned domain.
  Rng rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(df.contains(dp.sample(rng)));
}

TEST(Domain, PruningRatioInPaperRange) {
  // Table 2 reports ~20-55% for direct convolution; verify the same order
  // of magnitude on an AlexNet-like layer.
  ConvShape s;
  s.cin = 256;
  s.hin = s.win = 13;
  s.cout = 384;
  s.kh = s.kw = 3;
  s.pad = 1;
  const auto dp = SearchDomain::build(
      s, MachineSpec::v100(), {.prune_with_optimality = true});
  const auto df = SearchDomain::build(
      s, MachineSpec::v100(), {.prune_with_optimality = false});
  const double ratio =
      static_cast<double>(dp.size()) / static_cast<double>(df.size());
  EXPECT_GT(ratio, 0.02);
  EXPECT_LT(ratio, 0.8);
}

TEST(Domain, SamplesAreContained) {
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100());
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const ConvConfig c = d.sample(rng);
    EXPECT_TRUE(d.contains(c)) << c.to_string();
    EXPECT_LE(c.threads(), MachineSpec::v100().max_threads_per_block);
    EXPECT_EQ(c.x % c.nxt, 0);
  }
}

TEST(Domain, NeighborsAreContainedAndDiffer) {
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100());
  Rng rng(9);
  const ConvConfig c = d.sample(rng);
  const auto moves = d.neighbors(c);
  EXPECT_FALSE(moves.empty());
  for (const auto& m : moves) {
    EXPECT_TRUE(d.contains(m)) << m.to_string();
    EXPECT_FALSE(m == c);
  }
}

TEST(Domain, WinogradTilesAreMultiplesOfE) {
  DomainOptions opts;
  opts.winograd = true;
  opts.e = 2;
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100(), opts);
  for (std::int64_t x : d.xs()) EXPECT_EQ(x % 2, 0);
  for (std::int64_t y : d.ys()) EXPECT_EQ(y % 2, 0);
}

TEST(Features, ArityMatchesAndIsFinite) {
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100());
  Rng rng(3);
  const auto f = config_features(d, d.sample(rng));
  EXPECT_EQ(f.size(), config_feature_arity());
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(Features, DistinguishLayouts) {
  const auto d = SearchDomain::build(small_shape(), MachineSpec::v100());
  Rng rng(3);
  ConvConfig a = d.sample(rng);
  ConvConfig b = a;
  b.layout = a.layout == Layout::kNCHW ? Layout::kNHWC : Layout::kNCHW;
  EXPECT_NE(config_features(d, a), config_features(d, b));
}

TEST(Measurer, MeasuresValidConfig) {
  SimGpu gpu(MachineSpec::v100());
  const auto d = SearchDomain::build(small_shape(), gpu.spec());
  ConvMeasurer m(gpu, d);
  Rng rng(5);
  const Measurement r = m.measure(d.sample(rng));
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.seconds, 0);
  EXPECT_GT(m.gflops(r.seconds), 0);
  EXPECT_EQ(m.trials(), 1u);
}

TEST(Measurer, InvalidConfigIsInfinite) {
  SimGpu gpu(MachineSpec::v100());
  const auto d = SearchDomain::build(small_shape(), gpu.spec());
  ConvMeasurer m(gpu, d);
  ConvConfig c;
  c.x = 16;
  c.y = 16;
  c.z = 16;
  c.smem_budget = 512;  // way too small
  const Measurement r = m.measure(c);
  EXPECT_FALSE(r.valid);
  EXPECT_TRUE(std::isinf(r.seconds));
}

class TunerSmoke : public ::testing::TestWithParam<int> {};

TEST(Tuners, AllFindValidConfigs) {
  SimGpu gpu(MachineSpec::v100());
  const auto d = SearchDomain::build(small_shape(), gpu.spec());
  std::vector<std::unique_ptr<Tuner>> tuners;
  tuners.push_back(std::make_unique<RandomTuner>(1));
  tuners.push_back(std::make_unique<SimulatedAnnealingTuner>(1));
  tuners.push_back(std::make_unique<GeneticTuner>(1));
  tuners.push_back(std::make_unique<AteTuner>(1));
  for (auto& t : tuners) {
    ConvMeasurer m(gpu, d);
    const TuneResult r = t->run(m, 24);
    EXPECT_EQ(r.history.size(), 24u) << t->name();
    EXPECT_LT(r.best_seconds, 1e30) << t->name();
    EXPECT_TRUE(d.contains(r.best)) << t->name();
    // best_seconds trace is non-increasing.
    for (std::size_t i = 1; i < r.history.size(); ++i)
      EXPECT_LE(r.history[i].best_seconds, r.history[i - 1].best_seconds);
  }
}

TEST(Tuners, AteBeatsOrMatchesRandomOnSameBudget) {
  SimGpu gpu(MachineSpec::v100());
  ConvShape s;
  s.cin = 32;
  s.hin = s.win = 28;
  s.cout = 64;
  s.kh = s.kw = 3;
  s.pad = 1;
  const auto d = SearchDomain::build(s, gpu.spec());
  ConvMeasurer m_ate(gpu, d), m_rnd(gpu, d);
  AteTuner ate(3);
  RandomTuner rnd(3);
  const TuneResult ra = ate.run(m_ate, 48);
  const TuneResult rr = rnd.run(m_rnd, 48);
  EXPECT_LE(ra.best_seconds, rr.best_seconds * 1.15);
}

TEST(Tuners, ConvergenceTrialWellDefined) {
  SimGpu gpu(MachineSpec::v100());
  const auto d = SearchDomain::build(small_shape(), gpu.spec());
  ConvMeasurer m(gpu, d);
  RandomTuner t(2);
  const TuneResult r = t.run(m, 16);
  const int conv = r.trials_to_converge();
  EXPECT_GE(conv, 1);
  EXPECT_LE(conv, 16);
}

TEST(Engine, AutotunesEndToEnd) {
  SimGpu gpu(MachineSpec::v100());
  AutotuneOptions opts;
  opts.budget = 20;
  const AutotuneOutcome out = autotune_conv(gpu, small_shape(), opts);
  EXPECT_GT(out.best_gflops, 0);
  EXPECT_TRUE(out.domain.contains(out.result.best));
}

TEST(Engine, WinogradDomainTunes) {
  SimGpu gpu(MachineSpec::v100());
  AutotuneOptions opts;
  opts.budget = 16;
  opts.winograd = true;
  const AutotuneOutcome out = autotune_conv(gpu, small_shape(), opts);
  EXPECT_GT(out.best_gflops, 0);
}


/// Spearman rank correlation between two equally sized vectors.
double rank_correlation(std::vector<double> a, std::vector<double> b) {
  auto ranks = [](std::vector<double> v) {
    std::vector<std::size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
      r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(std::move(a)), rb = ranks(std::move(b));
  const double n = static_cast<double>(ra.size());
  double d2 = 0;
  for (std::size_t i = 0; i < ra.size(); ++i)
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

TEST(CostModel, GbtRanksRealMeasurements) {
  // The engine's premise: a GBT trained on measured runtimes must rank
  // unseen configurations usefully (TVM reports the same property for
  // XGBoost). Train on 48 measured configs, evaluate rank correlation on
  // 24 held-out ones.
  SimGpu gpu(MachineSpec::v100());
  ConvShape s;
  s.cin = 32;
  s.hin = s.win = 28;
  s.cout = 64;
  s.kh = s.kw = 3;
  s.pad = 1;
  const auto domain = SearchDomain::build(s, gpu.spec());
  ConvMeasurer m(gpu, domain, 3);
  Rng rng(3);

  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (int i = 0; i < 48; ++i) {
    const ConvConfig cfg = domain.sample(rng);
    const Measurement meas = m.measure(cfg);
    if (!meas.valid) continue;
    X.push_back(config_features(domain, cfg));
    y.push_back(std::log(meas.seconds));
  }
  ASSERT_GE(X.size(), 32u);
  Gbt model;
  model.fit(X, y);

  std::vector<double> predicted, actual;
  for (int i = 0; i < 24; ++i) {
    const ConvConfig cfg = domain.sample(rng);
    const Measurement meas = m.measure(cfg);
    if (!meas.valid) continue;
    predicted.push_back(model.predict(config_features(domain, cfg)));
    actual.push_back(std::log(meas.seconds));
  }
  ASSERT_GE(predicted.size(), 16u);
  EXPECT_GT(rank_correlation(predicted, actual), 0.5);
}

}  // namespace
}  // namespace convbound
