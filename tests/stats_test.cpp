// LatencyHistogram + merge_snapshots: the exact-mergeable latency
// telemetry layer, including the regression test for the old
// completed-weighted "average of percentiles" fleet merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "convbound/serve/stats.hpp"
#include "convbound/util/check.hpp"
#include "convbound/util/latency_histogram.hpp"
#include "convbound/util/rng.hpp"

namespace convbound {
namespace {

// The reference: linear interpolation between order statistics of the
// fully-sorted population — what the histogram quantiles approximate to
// within one 5% bucket.
// One 5% bucket of quantile error, plus a hair of slack for the linear
// interpolation between adjacent order statistics the exact reference uses
// (the histogram's answer stays inside the bucket holding the rank; the
// reference can sit up to one neighbour-gap outside it).
constexpr double kBucketSlack = LatencyHistogram::kGrowth - 1.0 + 0.005;

double exact_percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// ------------------------------------------------- bucket ladder shape ----

TEST(LatencyHistogram, LadderCoversTheDeclaredRange) {
  // The top rung's upper edge must reach kMaxSeconds (the kRungs constant
  // is hand-computed; this pins it).
  EXPECT_GE(LatencyHistogram::bucket_upper(LatencyHistogram::kRungs),
            LatencyHistogram::kMaxSeconds);
  // ... and the ladder must not be wastefully deep: one fewer rung would
  // fall short.
  EXPECT_LT(LatencyHistogram::bucket_upper(LatencyHistogram::kRungs - 1),
            LatencyHistogram::kMaxSeconds);

  // Every rung is exactly one growth factor wide (5% relative resolution).
  for (int i = 1; i <= LatencyHistogram::kRungs; i += 37) {
    EXPECT_NEAR(LatencyHistogram::bucket_upper(i) /
                    LatencyHistogram::bucket_lower(i),
                LatencyHistogram::kGrowth, 1e-9)
        << "rung " << i;
  }
}

TEST(LatencyHistogram, BucketIndexMatchesEdges) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_index(0.9e-6), 0);  // underflow
  EXPECT_EQ(LatencyHistogram::bucket_index(1e-6), 1);    // first rung
  EXPECT_EQ(LatencyHistogram::bucket_index(100.0),
            LatencyHistogram::kBuckets - 1);  // overflow
  EXPECT_EQ(LatencyHistogram::bucket_index(1e9),
            LatencyHistogram::kBuckets - 1);
  // Every recorded value lands in a bucket whose edges contain it.
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double v = 1e-6 * std::pow(10.0, rng.uniform() * 8.0);  // 1µs..100s
    const int b = LatencyHistogram::bucket_index(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, LatencyHistogram::kBuckets);
    if (b < LatencyHistogram::kBuckets - 1) {
      // Float rounding can put an edge value one bucket off; containment
      // within the widened pair of edges is the property that matters.
      EXPECT_LE(LatencyHistogram::bucket_lower(b), v * 1.0000001);
      EXPECT_GT(LatencyHistogram::bucket_upper(b), v * 0.9999999);
    }
  }
}

// -------------------------------------------------- record + quantiles ----

TEST(LatencyHistogram, ExactCountSumMinMax) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0);
  h.record(2e-3);
  h.record(4e-3);
  h.record(1e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 7e-3 / 3);
  EXPECT_DOUBLE_EQ(h.min_value(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max_value(), 4e-3);
  // Quantiles are clamped to the exact extremes.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4e-3);
}

TEST(LatencyHistogram, QuantilesWithinOneBucketOfExact) {
  // Log-uniform latencies over 4 decades — every quantile must sit within
  // 5% (one bucket) of the sorted-population value.
  Rng rng(7);
  LatencyHistogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = 1e-5 * std::pow(10.0, rng.uniform() * 4.0);
    values.push_back(v);
    h.record(v);
  }
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_percentile(values, q);
    const double approx = h.quantile(q);
    EXPECT_NEAR(approx / exact, 1.0, kBucketSlack)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogram, OutOfLadderValuesUseExactExtremes) {
  LatencyHistogram h;
  h.record(1e-9);   // below the ladder
  h.record(-1.0);   // clamped to 0
  h.record(250.0);  // overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.max_value(), 250.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 250.0);  // overflow pins to exact max
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
}

// ----------------------------------------------------- merge semantics ----

TEST(LatencyHistogram, MergeIsBucketwiseAddition) {
  Rng rng(11);
  LatencyHistogram a, b, whole;
  for (int i = 0; i < 3000; ++i) {
    const double v = 1e-5 * std::pow(10.0, rng.uniform() * 3.0);
    (i % 3 == 0 ? a : b).record(v);
    whole.record(v);
  }
  LatencyHistogram merged = a;
  merged.merge(b);
  EXPECT_TRUE(merged.same_buckets(whole));
  EXPECT_EQ(merged.count(), whole.count());
  // Sums agree up to float addition order (merge adds two partial sums,
  // the reference added value by value).
  EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());
  EXPECT_DOUBLE_EQ(merged.min_value(), whole.min_value());
  EXPECT_DOUBLE_EQ(merged.max_value(), whole.max_value());
  // Merging is associative on buckets, so any quantile of the merge equals
  // the quantile of the one-histogram population bit for bit.
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));

  LatencyHistogram empty;
  merged.merge(empty);  // no-op
  EXPECT_TRUE(merged.same_buckets(whole));
}

// ------------------------------------------------------- serialization ----

TEST(LatencyHistogram, SerializeRoundTrip) {
  Rng rng(13);
  LatencyHistogram h;
  for (int i = 0; i < 500; ++i)
    h.record(1e-6 * std::pow(10.0, rng.uniform() * 7.0));
  h.record(0);
  h.record(500.0);
  const LatencyHistogram back = LatencyHistogram::deserialize(h.serialize());
  EXPECT_TRUE(back.same_buckets(h));
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_DOUBLE_EQ(back.min_value(), h.min_value());
  EXPECT_DOUBLE_EQ(back.max_value(), h.max_value());
  for (double q : {0.5, 0.99})
    EXPECT_DOUBLE_EQ(back.quantile(q), h.quantile(q));

  const LatencyHistogram none =
      LatencyHistogram::deserialize(LatencyHistogram().serialize());
  EXPECT_TRUE(none.empty());
}

TEST(LatencyHistogram, DeserializeRejectsMalformedInput) {
  EXPECT_THROW(LatencyHistogram::deserialize(""), Error);
  EXPECT_THROW(LatencyHistogram::deserialize("v2 0 0 0 0"), Error);
  EXPECT_THROW(LatencyHistogram::deserialize("v1 1 0 0 0 nonsense"), Error);
  EXPECT_THROW(LatencyHistogram::deserialize("v1 1 0 0 0 99999:1"), Error);
  // Header count disagreeing with the bucket sum is corruption, not noise.
  EXPECT_THROW(LatencyHistogram::deserialize("v1 5 0 0 0 10:1"), Error);
}

// ------------------------------------- fleet merge regression (the bug) ----

// The headline bugfix test: a heterogeneous two-device fleet where the fast
// device serves ~98.5% of traffic around 1ms and the slow device absorbs
// the ~1.5% bandwidth-bound tail around 200ms (jittered so the populations
// are realistic, not two spikes). The true fleet p99 lives in the slow
// device's mass. The old merge — a completed-weighted average of
// per-device p99s — mixes 9850 parts ~1ms into the figure and understates
// the tail by ~30x; the histogram merge must land within one 5% bucket of
// the exact sorted-population percentile.
TEST(MergeSnapshots, SkewedFleetP99IsExactNotWeighted) {
  Rng rng(20260727);
  ServerStats fast_stats, slow_stats;
  std::vector<double> all;

  const auto feed = [&](ServerStats& stats, int n, double center) {
    std::vector<double> batch;
    for (int i = 0; i < n; ++i) {
      const double v = center * (0.9 + 0.2 * rng.uniform());
      batch.push_back(v);
      all.push_back(v);
      if (batch.size() == 8) {
        stats.record_batch(batch.size(), 1e-4, batch);
        batch.clear();
      }
    }
    if (!batch.empty()) stats.record_batch(batch.size(), 1e-4, batch);
  };
  feed(fast_stats, 9850, 1e-3);   // fast device: ~1ms latencies
  feed(slow_stats, 150, 200e-3);  // slow device: the ~200ms tail

  const StatsSnapshot fast = fast_stats.snapshot();
  const StatsSnapshot slow = slow_stats.snapshot();
  const StatsSnapshot fleet = merge_snapshots({fast, slow});
  ASSERT_EQ(fleet.completed, all.size());

  const double exact_p99 = exact_percentile(all, 0.99);
  // Sanity on the scenario itself: the true tail is in the slow mass.
  ASSERT_GT(exact_p99, 0.1);

  // The fix: bucket-exact fleet percentiles after the merge — within one
  // 5% bucket of the exact sorted-latency value.
  EXPECT_NEAR(fleet.latency_p99 / exact_p99, 1.0, kBucketSlack)
      << "exact=" << exact_p99 << " histogram=" << fleet.latency_p99;
  EXPECT_NEAR(fleet.latency_p50 / exact_percentile(all, 0.50), 1.0,
              kBucketSlack);
  EXPECT_DOUBLE_EQ(fleet.latency_max,
                   *std::max_element(all.begin(), all.end()));

  // The bug: the old completed-weighted average of per-device percentiles,
  // recomputed here from the same per-device snapshots, is off by far more
  // than the acceptance threshold (≥30% relative error; actually ~97%
  // understated on this fleet).
  const double w_fast = static_cast<double>(fast.completed);
  const double w_slow = static_cast<double>(slow.completed);
  const double weighted_p99 =
      (w_fast * fast.latency_p99 + w_slow * slow.latency_p99) /
      (w_fast + w_slow);
  const double weighted_error = std::abs(weighted_p99 - exact_p99) / exact_p99;
  EXPECT_GE(weighted_error, 0.30)
      << "weighted=" << weighted_p99 << " exact=" << exact_p99;
}

// The opposite skew — the tail inside the *fast* device's own p99 — where
// the weighted average overstates instead: per-device percentiles are
// simply not mergeable in either direction, while the histogram stays
// bucket-exact.
TEST(MergeSnapshots, WeightedAverageOverstatesWhenTailIsThin) {
  Rng rng(4242);
  ServerStats fast_stats, slow_stats;
  std::vector<double> all;
  const auto feed = [&](ServerStats& stats, int n, double center) {
    for (int i = 0; i < n; ++i) {
      const double v = center * (0.9 + 0.2 * rng.uniform());
      all.push_back(v);
      stats.record_batch(1, 1e-4, {v});
    }
  };
  feed(fast_stats, 9950, 1e-3);  // 99.5%: the fleet p99 stays ~1ms
  feed(slow_stats, 50, 200e-3);

  const StatsSnapshot fast = fast_stats.snapshot();
  const StatsSnapshot slow = slow_stats.snapshot();
  const StatsSnapshot fleet = merge_snapshots({fast, slow});

  const double exact_p99 = exact_percentile(all, 0.99);
  ASSERT_LT(exact_p99, 2e-3);  // tail too thin to reach the slow mass
  EXPECT_NEAR(fleet.latency_p99 / exact_p99, 1.0, kBucketSlack);

  const double weighted_p99 =
      (static_cast<double>(fast.completed) * fast.latency_p99 +
       static_cast<double>(slow.completed) * slow.latency_p99) /
      static_cast<double>(fast.completed + slow.completed);
  EXPECT_GE(std::abs(weighted_p99 - exact_p99) / exact_p99, 0.30);
}

// ------------------------------------ striped front-door stats (sharded) ----

// Regression for the sharded front door's counter fold: the cluster's
// fleet-snapshot override (PR 6) takes the front-door counters from the
// front stats object *before* the device merge. With striped stats that
// object holds one stripe per ingest shard, and the fold must sum every
// stripe — reading stripe 0 (the natural porting mistake) reports only the
// slice of traffic that hashed to shard 0. The stripes here are
// deliberately skewed so that mistake cannot pass.
TEST(StripedServerStats, SnapshotFoldsSkewedStripesNotStripeZero) {
  StripedServerStats stats(4);
  ASSERT_EQ(stats.num_stripes(), 4u);
  stats.mark_start();

  // Heavily skewed: stripe 0 sees almost nothing; stripe 2 carries the
  // submit volume; rejections land on stripes 1 and 3; expiry and the
  // completions live on the exec stripe.
  stats.stripe(0).record_submitted(1, "paid");
  for (int i = 0; i < 100; ++i)
    stats.stripe(2).record_submitted(static_cast<std::size_t>(i), "paid");
  for (int i = 0; i < 7; ++i) stats.stripe(1).record_rejected("free");
  for (int i = 0; i < 5; ++i) stats.stripe(3).record_quota_rejected("free");
  stats.exec_stripe().record_expired(3, "free");
  stats.exec_stripe().record_batch(2, 1e-3, {1e-3, 2e-3}, {"paid", "paid"});

  const StatsSnapshot s = stats.snapshot();
  EXPECT_EQ(s.submitted, 1u + 100u + 7u + 5u);  // rejects count as submits
  EXPECT_EQ(s.rejected, 7u);
  EXPECT_EQ(s.quota_rejected, 5u);
  EXPECT_EQ(s.expired, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.batches, 1u);
  // The queue-depth watermark is the max over stripes' samples (each
  // sample is a *global* depth), not stripe 0's local high-water mark.
  EXPECT_EQ(s.max_queue_depth, 99u);
  // Per-class slices fold the same way.
  ASSERT_TRUE(s.classes.count("paid"));
  ASSERT_TRUE(s.classes.count("free"));
  EXPECT_EQ(s.classes.at("paid").submitted, 101u);
  EXPECT_EQ(s.classes.at("paid").completed, 2u);
  EXPECT_EQ(s.classes.at("free").rejected, 7u);
  EXPECT_EQ(s.classes.at("free").quota_rejected, 5u);
  EXPECT_EQ(s.classes.at("free").expired, 3u);
  // Latency telemetry (exec stripe only here) survives the fold exactly.
  EXPECT_DOUBLE_EQ(s.latency_max, 2e-3);
  EXPECT_EQ(s.latency.count(), 2u);

  // The regression itself: stripe 0 alone is nowhere near the fold — any
  // consumer reading one stripe as "the front door" undercounts ~100x.
  const StatsSnapshot stripe0 = stats.stripe(0).snapshot();
  EXPECT_EQ(stripe0.submitted, 1u);
  EXPECT_LT(stripe0.submitted * 50, s.submitted);
}

// ------------------------------------- stage decomposition + shed reasons ----

TEST(ServerStats, RecordsStagesAndShutdownRejections) {
  ServerStats stats;
  stats.mark_start();
  stats.record_shutdown_rejected("paid");
  stats.record_shutdown_rejected();
  std::vector<ServerStats::StageLatencies> stages(2);
  stages[0] = {1e-3, 2e-3, 3e-3};   // sums to the 6ms latency below
  stages[1] = {4e-3, 5e-3, 11e-3};  // sums to 20ms
  stats.record_batch(2, 1e-4, {6e-3, 20e-3}, {"paid", "paid"}, stages);

  const StatsSnapshot s = stats.snapshot();
  // Shutdown rejections count as submissions (a client reached the door),
  // and land in their own shed counter, split from queue-full rejections.
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.shutdown_rejected, 2u);
  EXPECT_EQ(s.rejected, 0u);
  ASSERT_TRUE(s.classes.count("paid"));
  EXPECT_EQ(s.classes.at("paid").shutdown_rejected, 1u);

  // Stage histograms hold one entry per completion and their sums obey the
  // accounting identity against the end-to-end latency sum.
  EXPECT_EQ(s.queue_wait.count(), 2u);
  EXPECT_EQ(s.batch_delay.count(), 2u);
  EXPECT_EQ(s.exec.count(), 2u);
  EXPECT_NEAR(s.queue_wait.sum() + s.batch_delay.sum() + s.exec.sum(),
              s.latency.sum(), 1e-12);
  EXPECT_GT(s.queue_wait_p99, 0.0);
  EXPECT_GT(s.exec_mean, 0.0);
  EXPECT_EQ(s.classes.at("paid").queue_wait.count(), 2u);
  EXPECT_GT(s.classes.at("paid").exec_p99, 0.0);
}

TEST(ShardImbalanceRatio, MaxOverMean) {
  EXPECT_DOUBLE_EQ(shard_imbalance_ratio({}), 0.0);
  EXPECT_DOUBLE_EQ(shard_imbalance_ratio({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(shard_imbalance_ratio({4, 4, 4, 4}), 1.0);
  // max 8 over mean 4 = 2.
  EXPECT_DOUBLE_EQ(shard_imbalance_ratio({8, 4, 0, 4}), 2.0);
}

// Pins the fleet-merge fix: snapshot-time queue_depth SUMS across parts
// (total queued population on the fleet), while max_queue_depth keeps the
// max; shard vectors add element-wise (resizing to the widest part) and
// the imbalance ratio is recomputed from the merged high-water marks.
TEST(MergeSnapshots, QueueDepthSumsShardVectorsAddStagesMerge) {
  ServerStats a_stats, b_stats;
  std::vector<ServerStats::StageLatencies> st_a(1), st_b(1);
  st_a[0] = {1e-3, 1e-3, 2e-3};
  st_b[0] = {10e-3, 5e-3, 15e-3};
  a_stats.record_batch(1, 1e-4, {4e-3}, {}, st_a);
  b_stats.record_batch(1, 1e-4, {30e-3}, {}, st_b);
  a_stats.record_shutdown_rejected();

  StatsSnapshot a = a_stats.snapshot();
  StatsSnapshot b = b_stats.snapshot();
  a.queue_depth = 10;
  a.max_queue_depth = 12;
  a.shard_depths = {4, 6};
  a.shard_max_depths = {8, 4};
  b.queue_depth = 3;
  b.max_queue_depth = 9;
  b.shard_depths = {1, 1, 1};  // wider part: a 2-shard and a 3-shard door
  b.shard_max_depths = {0, 4, 4};

  const StatsSnapshot fleet = merge_snapshots({a, b});
  EXPECT_EQ(fleet.queue_depth, 13u);       // sum — the fix
  EXPECT_EQ(fleet.max_queue_depth, 12u);   // still the max
  EXPECT_EQ(fleet.shutdown_rejected, 1u);
  ASSERT_EQ(fleet.shard_depths.size(), 3u);
  EXPECT_EQ(fleet.shard_depths[0], 5u);
  EXPECT_EQ(fleet.shard_depths[2], 1u);
  ASSERT_EQ(fleet.shard_max_depths.size(), 3u);
  EXPECT_EQ(fleet.shard_max_depths[0], 8u);
  EXPECT_EQ(fleet.shard_max_depths[1], 8u);
  // Recomputed from the merged marks: max 8 over mean (8+8+4)/3.
  EXPECT_NEAR(fleet.shard_imbalance, 8.0 / (20.0 / 3.0), 1e-12);

  // Stage histograms merged bucket-wise and re-derived.
  EXPECT_EQ(fleet.queue_wait.count(), 2u);
  EXPECT_NEAR(fleet.queue_wait.sum() + fleet.batch_delay.sum() +
                  fleet.exec.sum(),
              fleet.latency.sum(), 1e-12);
  EXPECT_GT(fleet.exec_p99, 0.0);
  EXPECT_GE(fleet.queue_wait_p99, fleet.queue_wait_p50);
}

}  // namespace
}  // namespace convbound
