#include <gtest/gtest.h>

#include "convbound/bounds/conv_bounds.hpp"
#include "convbound/conv/algorithms.hpp"
#include "convbound/conv/reference.hpp"
#include "convbound/nets/inference.hpp"
#include "convbound/nets/models.hpp"

namespace convbound {
namespace {

ConvShape gshape(std::int64_t cin, std::int64_t hw, std::int64_t cout,
                 std::int64_t groups, std::int64_t k = 3,
                 std::int64_t stride = 1, std::int64_t pad = 1) {
  ConvShape s;
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = k;
  s.stride = stride;
  s.pad = pad;
  s.groups = groups;
  s.validate();
  return s;
}

TEST(GroupedShape, ValidationAndDerivedQuantities) {
  const ConvShape s = gshape(8, 10, 16, 4);
  EXPECT_EQ(s.cin_per_group(), 2);
  EXPECT_EQ(s.cout_per_group(), 4);
  EXPECT_EQ(s.weight_elems(), 16 * 2 * 9);
  // FLOPs shrink by the group factor relative to dense.
  ConvShape dense = s;
  dense.groups = 1;
  EXPECT_EQ(s.flops() * 4, dense.flops());

  ConvShape bad = s;
  bad.groups = 3;  // does not divide 8
  EXPECT_THROW(bad.validate(), Error);
}

TEST(GroupedReference, TwoGroupsAreIndependentHalves) {
  // A 2-group conv must equal two independent convs on channel halves.
  const ConvShape s = gshape(4, 8, 6, 2);
  const ConvProblem p = make_problem(s, 61);
  const Tensor4<float> got = conv2d_ref(p.input, p.weights, s);

  ConvShape half = s;
  half.cin = 2;
  half.cout = 3;
  half.groups = 1;
  for (int g = 0; g < 2; ++g) {
    Tensor4<float> in_half(1, 2, 8, 8);
    for (std::int64_t c = 0; c < 2; ++c)
      for (std::int64_t h = 0; h < 8; ++h)
        for (std::int64_t w = 0; w < 8; ++w)
          in_half(0, c, h, w) = p.input(0, g * 2 + c, h, w);
    Tensor4<float> w_half(3, 2, 3, 3);
    for (std::int64_t oc = 0; oc < 3; ++oc)
      for (std::int64_t c = 0; c < 2; ++c)
        for (std::int64_t i = 0; i < 3; ++i)
          for (std::int64_t j = 0; j < 3; ++j)
            w_half(oc, c, i, j) = p.weights(g * 3 + oc, c, i, j);
    const Tensor4<float> expect = conv2d_ref(in_half, w_half, half);
    for (std::int64_t oc = 0; oc < 3; ++oc)
      for (std::int64_t h = 0; h < s.hout(); ++h)
        for (std::int64_t w = 0; w < s.wout(); ++w)
          ASSERT_NEAR(got(0, g * 3 + oc, h, w), expect(0, oc, h, w), 1e-5);
  }
}

struct GroupedCase {
  ConvShape s;
  ConvConfig cfg;
};

class GroupedTiledCorrectness : public ::testing::TestWithParam<GroupedCase> {
};

TEST_P(GroupedTiledCorrectness, MatchesReference) {
  const auto& p = GetParam();
  const ConvProblem prob = make_problem(p.s, 67, p.cfg.layout);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, p.s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(p.s.batch, p.s.cout, p.s.hout(), p.s.wout());
  direct_tiled_sim(gpu, prob.input, prob.weights, p.s, p.cfg, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3))
      << p.s.to_string() << " " << p.cfg.to_string();
}

ConvConfig gcfg(std::int64_t x, std::int64_t y, std::int64_t z) {
  ConvConfig c;
  c.x = x;
  c.y = y;
  c.z = z;
  return c;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupedTiledCorrectness,
    ::testing::Values(
        GroupedCase{gshape(4, 8, 6, 2), gcfg(4, 4, 3)},
        GroupedCase{gshape(8, 10, 8, 8), gcfg(4, 4, 1)},     // depthwise
        GroupedCase{gshape(8, 10, 8, 8), gcfg(4, 4, 8)},     // z gets snapped
        GroupedCase{gshape(6, 9, 12, 3), gcfg(3, 3, 4)},
        GroupedCase{gshape(16, 12, 16, 16, 3, 2, 1), gcfg(2, 2, 1)},  // dw s2
        GroupedCase{gshape(4, 7, 8, 4, 1, 1, 0), gcfg(7, 7, 2)}));  // 1x1

TEST(GroupedNaive, MatchesReference) {
  const ConvShape s = gshape(8, 9, 8, 8);  // depthwise
  const ConvProblem prob = make_problem(s, 71);
  const Tensor4<float> expect = conv2d_ref(prob.input, prob.weights, s);
  SimGpu gpu(MachineSpec::v100());
  Tensor4<float> out(s.batch, s.cout, s.hout(), s.wout());
  direct_naive_sim(gpu, prob.input, prob.weights, s, out);
  EXPECT_TRUE(allclose(expect, out, 1e-3, 1e-3));
}

TEST(GroupedDispatch, UnsupportedAlgorithmsDeclineGroups) {
  const ConvShape s = gshape(8, 10, 8, 8);
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kIm2col, s));
  EXPECT_FALSE(algorithm_supports(ConvAlgorithm::kWinogradFused, s));
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kDirectTiled, s));
  EXPECT_TRUE(algorithm_supports(ConvAlgorithm::kCudnnDirect, s));
}

TEST(GroupedDispatch, CudnnBestOfRunsGrouped) {
  const ConvShape s = gshape(4, 8, 4, 4);
  const ConvProblem p = make_problem(s, 73);
  const Tensor4<float> expect = conv2d_ref(p.input, p.weights, s);
  SimGpu gpu(MachineSpec::v100());
  const ConvResult r =
      run_conv(gpu, ConvAlgorithm::kCudnnDirect, p.input, p.weights, s);
  EXPECT_TRUE(allclose(expect, r.output, 1e-3, 1e-3));
}

TEST(GroupedBounds, DepthwiseBoundBelowDense) {
  ConvShape dw = gshape(64, 28, 64, 64);
  ConvShape dense = dw;
  dense.groups = 1;
  const double S = 8192;
  EXPECT_LT(direct_conv_lower_bound_leading(dw, S),
            direct_conv_lower_bound_leading(dense, S));
  // Per-group channel reads shrink the dataflow prediction too.
  EXPECT_LT(direct_dataflow_reads(dw, 4, 4, 1),
            direct_dataflow_reads(dense, 4, 4, 1));
}

TEST(GroupedModels, MobilenetShapesChainAndValidate) {
  const auto layers = mobilenet_v1();
  EXPECT_EQ(layers.size(), 1u + 13u * 2u);
  for (std::size_t i = 0; i + 1 < layers.size(); ++i) {
    EXPECT_EQ(layers[i + 1].shape.cin, layers[i].shape.cout)
        << layers[i].name;
    EXPECT_EQ(layers[i + 1].shape.hin, layers[i].shape.hout())
        << layers[i].name;
  }
  int depthwise = 0;
  for (const auto& l : layers)
    if (l.shape.groups > 1) {
      EXPECT_EQ(l.shape.groups, l.shape.cin);
      ++depthwise;
    }
  EXPECT_EQ(depthwise, 13);
}

TEST(GroupedModels, MobilenetEndToEndOursBeatsBaseline) {
  SimGpu gpu(MachineSpec::v100());
  // A 3-block MobileNet slice (full net would slow the suite down).
  auto layers = mobilenet_v1();
  layers.resize(7);
  const ModelReport base =
      run_model(gpu, "mobilenet-slice", layers, ModelStrategy::kBaseline);
  const ModelReport ours =
      run_model(gpu, "mobilenet-slice", layers, ModelStrategy::kOursDefault);
  EXPECT_LT(ours.total_seconds, base.total_seconds);
}

}  // namespace
}  // namespace convbound
